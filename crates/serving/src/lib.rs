//! Long-lived serving layer over the batch MPC algorithms: a
//! [`DiversityIndex`] absorbs point insertions into per-shard GMM
//! coresets and answers k-center / k-diversity queries from their merged
//! union, instead of re-running Algorithm 5/2 over the full dataset per
//! query.
//!
//! The design is the composable-coreset recipe (Aghamolaei–Ghodsi; see
//! PAPERS.md) fused with this repo's ladder machinery:
//!
//! * **Insert path.** Points are assigned to shards round-robin by
//!   insertion order (bit-deterministic — shard membership is a function
//!   of the insertion sequence only). Each shard keeps a GMM coreset of
//!   its members plus a *slack*: the covering radius of the coreset over
//!   the members at build time, widened online by the distance of every
//!   post-build insert to the frozen coreset. Inserts are O(coreset_k)
//!   distance evaluations — no rebuild.
//! * **Staleness.** A shard is rebuilt (GMM from scratch over its
//!   members) only when its post-build insert volume crosses
//!   [`IndexParams::max_pending_frac`], or when it has never been built.
//!   Rebuilds happen lazily at [`DiversityIndex::snapshot`] time, never
//!   on the insert path.
//! * **Query path.** A [`Snapshot`] freezes the shard-coreset union `U`
//!   and the global slack `δ = max_i slack_i` (every indexed point is
//!   within `δ` of `U`), then serves queries with the same descending /
//!   ascending τ-ladders as Algorithms 5 and 2 — [`LadderSearch`] +
//!   `k_bounded_mis` over a **single warm [`MemoizedSpace`]** shared by
//!   every query on the snapshot, so repeat queries re-probe sorted
//!   distance rows instead of recomputing distances. Per-`k` answers are
//!   cached.
//!
//! Guarantees served with each answer (`U ⊆ P`, so both are certified by
//! the composable-coreset argument):
//!
//! * k-center: served radius `= r(U, C) + δ ≥ r(P, C)`, and
//!   `≤ 2(1+ε)·r*(P) + (2(1+ε)+1)·δ` — the batch factor plus the merge
//!   slack.
//! * k-diversity: served diversity is the *exact* pairwise minimum of the
//!   returned points, `≥ (div_k(P) − 2δ) / (2+ε)`.
//!
//! Everything downstream of the insert path is the engine the batch
//! algorithms use, so answers are bit-identical across thread counts and
//! speed tiers like the rest of the repo (asserted in
//! `tests/index_equivalence.rs`).

use std::collections::HashMap;

use mpc_core::common::{covering_radius, to_point_ids};
use mpc_core::gmm::gmm;
use mpc_core::grid::grid_k_bounded_mis;
use mpc_core::kbmis::k_bounded_mis;
use mpc_core::ladder::{BoundaryMode, LadderSearch, RungEval};
use mpc_core::memo::MemoizedSpace;
use mpc_core::{KCenterEngine, Params};
use mpc_metric::{
    dist_point_to_set, min_pairwise_distance, EuclideanSpace, KernelStats, MetricSpace, PointId,
    PointSet,
};
use mpc_sim::Cluster;

/// Tuning knobs for a [`DiversityIndex`].
#[derive(Debug, Clone)]
pub struct IndexParams {
    /// Number of coreset shards (composability means any count works;
    /// more shards = cheaper rebuilds, slightly larger union).
    pub shards: usize,
    /// Per-shard GMM coreset size. Queries require `k ≤ coreset_k` —
    /// the coresets must be at least as selective as the query.
    pub coreset_k: usize,
    /// Rebuild a shard when its post-build inserts exceed this fraction
    /// of its membership (volume-threshold staleness). `0.5` means a
    /// shard tolerates 50% growth before re-coreseting.
    pub max_pending_frac: f64,
    /// Ladder precision ε for served queries (same role as
    /// [`Params::epsilon`]).
    pub epsilon: f64,
    /// Seed forwarded to the query-side [`Params`] / [`Cluster`].
    pub seed: u64,
}

impl IndexParams {
    /// Sensible defaults: rebuild at 50% growth, ε = 0.1.
    pub fn new(shards: usize, coreset_k: usize, seed: u64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(coreset_k >= 1, "coresets need at least one point");
        Self {
            shards,
            coreset_k,
            max_pending_frac: 0.5,
            epsilon: 0.1,
            seed,
        }
    }

    fn validate(&self) {
        assert!(self.shards >= 1, "need at least one shard");
        assert!(self.coreset_k >= 1, "coresets need at least one point");
        assert!(
            self.max_pending_frac >= 0.0 && self.max_pending_frac.is_finite(),
            "staleness fraction must be finite and non-negative"
        );
        assert!(
            self.epsilon > 0.0 && self.epsilon.is_finite(),
            "epsilon must be positive and finite"
        );
    }
}

/// One coreset shard: its members, the frozen GMM selection, and the
/// slack accounting that keeps `δ` honest between rebuilds.
#[derive(Debug, Clone, Default)]
struct Shard {
    /// Every point ever routed here (insertion order).
    members: Vec<u32>,
    /// `GMM(members, coreset_k)` as of the last rebuild; empty = never
    /// built (unconditionally stale while members exist).
    coreset: Vec<u32>,
    /// Covering radius of `coreset` over `members` *at build time*
    /// (GMM's would-be next radius).
    build_slack: f64,
    /// Max distance of a post-build insert to the frozen coreset,
    /// tracked online on the insert path.
    pending_slack: f64,
    /// Number of post-build inserts (staleness trigger).
    pending: usize,
}

impl Shard {
    fn stale(&self, max_pending_frac: f64) -> bool {
        if self.members.is_empty() {
            return false;
        }
        if self.coreset.is_empty() {
            return true;
        }
        let built = self.members.len() - self.pending;
        (self.pending as f64) > max_pending_frac * built as f64
    }

    /// Every member is within this distance of the shard coreset: pre-
    /// build members within `build_slack`, post-build inserts within
    /// `pending_slack` (measured against the same frozen coreset).
    fn slack(&self) -> f64 {
        if self.members.is_empty() {
            0.0
        } else if self.coreset.is_empty() {
            f64::INFINITY
        } else {
            self.build_slack.max(self.pending_slack)
        }
    }
}

/// Counters exposed for benches and examples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexStats {
    /// Total points indexed.
    pub points: usize,
    /// Shard count.
    pub shards: usize,
    /// Coreset rebuilds performed so far (lazy + forced).
    pub rebuilds: u64,
    /// Current global slack `δ` (∞ while an unbuilt non-empty shard
    /// exists — resolved by the next snapshot's lazy rebuilds).
    pub delta: f64,
}

/// A long-lived index serving k-center / k-diversity queries over a
/// growing Euclidean point set. See the module docs for the contract.
///
/// ```
/// use mpc_serving::{DiversityIndex, IndexParams};
///
/// let mut index = DiversityIndex::new(2, IndexParams::new(4, 8, 42));
/// for i in 0..64 {
///     index.insert(&[i as f64, (i % 7) as f64]);
/// }
/// let mut snap = index.snapshot();
/// let served = snap.kcenter(3);
/// assert!(served.centers.len() <= 3);
/// assert!(served.radius.is_finite());
/// let div = snap.kdiversity(3);
/// assert_eq!(div.subset.len(), 3);
/// ```
pub struct DiversityIndex {
    space: EuclideanSpace,
    dim: usize,
    shards: Vec<Shard>,
    params: IndexParams,
    rebuilds: u64,
}

impl DiversityIndex {
    /// An empty index over `dim`-dimensional points.
    pub fn new(dim: usize, params: IndexParams) -> Self {
        params.validate();
        assert!(dim >= 1, "points need at least one dimension");
        let shards = vec![Shard::default(); params.shards];
        Self {
            space: EuclideanSpace::new(PointSet::with_dim(dim)),
            dim,
            shards,
            params,
            rebuilds: 0,
        }
    }

    /// Total points indexed.
    pub fn len(&self) -> usize {
        self.space.n()
    }

    /// True before the first insert.
    pub fn is_empty(&self) -> bool {
        self.space.n() == 0
    }

    /// The underlying (growing) metric space — full-dataset cross-checks
    /// in tests and examples read it; queries go through
    /// [`DiversityIndex::snapshot`].
    pub fn space(&self) -> &EuclideanSpace {
        &self.space
    }

    /// Current counters (see [`IndexStats`]).
    pub fn stats(&self) -> IndexStats {
        IndexStats {
            points: self.space.n(),
            shards: self.shards.len(),
            rebuilds: self.rebuilds,
            delta: self.shards.iter().map(Shard::slack).fold(0.0f64, f64::max),
        }
    }

    /// Absorbs one point: O(1) routing plus at most `coreset_k` distance
    /// evaluations to widen the owning shard's slack. Never rebuilds a
    /// coreset and never rebuilds the f32 SoA mirror (the mirror is
    /// extended in place — see `SoaStorage::push`).
    pub fn insert(&mut self, coords: &[f64]) -> PointId {
        assert_eq!(coords.len(), self.dim, "point arity must match the index");
        let id = self.space.push_point(coords);
        let shard = &mut self.shards[id.0 as usize % self.params.shards];
        shard.members.push(id.0);
        if !shard.coreset.is_empty() {
            // Distance to the frozen coreset, folded into the online
            // slack. Exact f64 path — tier-independent by construction.
            let d = dist_point_to_set(&self.space, id, &to_point_ids(&shard.coreset));
            shard.pending_slack = shard.pending_slack.max(d);
            shard.pending += 1;
        }
        // An unbuilt shard stays unconditionally stale; its pending
        // bookkeeping starts at the first build.
        id
    }

    fn rebuild_shard(&mut self, s: usize) {
        let shard = &mut self.shards[s];
        if shard.members.is_empty() {
            return;
        }
        let out = gmm(&self.space, &shard.members, self.params.coreset_k);
        shard.build_slack = out.covering_radius();
        shard.coreset = out.selected;
        shard.pending = 0;
        shard.pending_slack = 0.0;
        self.rebuilds += 1;
    }

    /// Rebuilds every non-empty shard regardless of staleness. After
    /// this, two indexes that saw the same insertion sequence are in
    /// bit-identical states no matter how their snapshot/query histories
    /// differed (coresets are a pure function of the members).
    pub fn refresh_all(&mut self) {
        for s in 0..self.shards.len() {
            self.rebuild_shard(s);
        }
    }

    /// Freezes a queryable view: lazily rebuilds stale shards, merges the
    /// shard coresets, and hands out a [`Snapshot`] whose warm
    /// [`MemoizedSpace`] is shared by every query made on it.
    pub fn snapshot(&mut self) -> Snapshot<'_> {
        for s in 0..self.shards.len() {
            if self.shards[s].stale(self.params.max_pending_frac) {
                self.rebuild_shard(s);
            }
        }
        // Shard order concat: deterministic (members and rebuild points
        // are pure functions of the insertion sequence).
        let union: Vec<u32> = self
            .shards
            .iter()
            .flat_map(|s| s.coreset.iter().copied())
            .collect();
        let delta = self.shards.iter().map(Shard::slack).fold(0.0f64, f64::max);
        debug_assert!(
            union.is_empty() || delta.is_finite(),
            "lazy rebuilds must leave no unbuilt shard behind"
        );
        let params = Params::practical(1, self.params.epsilon, self.params.seed);
        Snapshot {
            space: &self.space,
            memo: MemoizedSpace::new(&self.space),
            cluster: Cluster::new(1, self.params.seed),
            local_sets: vec![union.clone()],
            union,
            delta,
            n_total: self.space.n(),
            max_k: self.params.coreset_k,
            params,
            engine: KCenterEngine::from_env(self.space.points().dim()),
            kcenter_cache: HashMap::new(),
            diversity_cache: HashMap::new(),
        }
    }
}

/// A k-center answer served from a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedKCenter {
    /// The selected centers (≤ k), drawn from the coreset union.
    pub centers: Vec<PointId>,
    /// Certified covering radius for the **whole indexed dataset**:
    /// `r(U, centers) + δ ≥ r(P, centers)`.
    pub radius: f64,
    /// `r(U, centers)` — the realized radius over the coreset union.
    pub union_radius: f64,
    /// The snapshot's merge slack `δ`.
    pub delta: f64,
    /// Ladder index of the accepted rung (0 = the coarse GMM solution).
    pub boundary_index: usize,
}

/// A k-diversity answer served from a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedDiversity {
    /// The selected points (k of them unless the index holds fewer
    /// distinct locations).
    pub subset: Vec<PointId>,
    /// Exact `div(subset)` — minimum pairwise distance (∞ for < 2
    /// points, matching [`min_pairwise_distance`]).
    pub diversity: f64,
    /// The snapshot's merge slack `δ`.
    pub delta: f64,
    /// Ladder index of the accepted rung (0 = the coarse GMM solution).
    pub boundary_index: usize,
}

/// Descending k-center ladder over the coreset union — rung `i` is the
/// (k+1)-bounded MIS at `τ_i = r/(1+ε)^i`, exactly Algorithm 5's ladder
/// with the union playing the role of `V`.
struct UnionKCenterRungs<'s, 'a> {
    memo: &'s MemoizedSpace<'a, EuclideanSpace>,
    local_sets: &'s [Vec<u32>],
    r: f64,
    k: usize,
    n: usize,
    params: &'s Params,
}

impl UnionKCenterRungs<'_, '_> {
    fn tau(&self, i: usize) -> f64 {
        self.r / (1.0 + self.params.epsilon).powi(i as i32)
    }
}

impl RungEval for UnionKCenterRungs<'_, '_> {
    type Rung = Vec<u32>;

    fn eval(&mut self, cluster: &mut Cluster, i: usize) -> Vec<u32> {
        k_bounded_mis(
            cluster,
            self.memo,
            self.local_sets,
            self.tau(i),
            self.k + 1,
            self.n,
            self.params,
            false,
        )
        .set
    }

    fn accept(&self, _i: usize, rung: &Vec<u32>) -> bool {
        rung.len() <= self.k
    }

    fn prewarm(&mut self, reachable: &[usize]) {
        let taus: Vec<f64> = reachable.iter().map(|&i| self.tau(i)).collect();
        self.memo.prewarm_taus(&taus);
    }
}

/// The same descending ladder answered by the grid engine
/// ([`grid_k_bounded_mis`]): per-rung τ-grids over the union instead of
/// memoized all-pairs scans. Selected via `KCENTER_ENGINE` at snapshot
/// time.
struct UnionGridRungs<'s, 'a> {
    space: &'a EuclideanSpace,
    local_sets: &'s [Vec<u32>],
    r: f64,
    k: usize,
    params: &'s Params,
    stats: KernelStats,
}

impl UnionGridRungs<'_, '_> {
    fn tau(&self, i: usize) -> f64 {
        self.r / (1.0 + self.params.epsilon).powi(i as i32)
    }
}

impl RungEval for UnionGridRungs<'_, '_> {
    type Rung = Vec<u32>;

    fn eval(&mut self, cluster: &mut Cluster, i: usize) -> Vec<u32> {
        grid_k_bounded_mis(
            cluster,
            self.space,
            self.local_sets,
            self.tau(i),
            self.k + 1,
            &mut self.stats,
        )
    }

    fn accept(&self, _i: usize, rung: &Vec<u32>) -> bool {
        rung.len() <= self.k
    }
}

/// Ascending diversity ladder over the coreset union — Algorithm 2's
/// ladder: rung `i` is the k-bounded MIS at `τ_i = r(1+ε)^i`, accepted
/// while it still finds k independent points.
struct UnionDiversityRungs<'s, 'a> {
    memo: &'s MemoizedSpace<'a, EuclideanSpace>,
    local_sets: &'s [Vec<u32>],
    r: f64,
    k: usize,
    n: usize,
    params: &'s Params,
}

impl UnionDiversityRungs<'_, '_> {
    fn tau(&self, i: usize) -> f64 {
        self.r * (1.0 + self.params.epsilon).powi(i as i32)
    }
}

impl RungEval for UnionDiversityRungs<'_, '_> {
    type Rung = Vec<u32>;

    fn eval(&mut self, cluster: &mut Cluster, i: usize) -> Vec<u32> {
        k_bounded_mis(
            cluster,
            self.memo,
            self.local_sets,
            self.tau(i),
            self.k,
            self.n,
            self.params,
            false,
        )
        .set
    }

    fn accept(&self, _i: usize, rung: &Vec<u32>) -> bool {
        rung.len() == self.k
    }

    fn prewarm(&mut self, reachable: &[usize]) {
        let taus: Vec<f64> = reachable.iter().map(|&i| self.tau(i)).collect();
        self.memo.prewarm_taus(&taus);
    }
}

/// A frozen, queryable view of the index: the merged coreset union, its
/// slack `δ`, one warm [`MemoizedSpace`] shared across queries, and
/// per-`k` answer caches. Holding a snapshot borrows the index — drop it
/// to resume inserting.
pub struct Snapshot<'a> {
    space: &'a EuclideanSpace,
    memo: MemoizedSpace<'a, EuclideanSpace>,
    cluster: Cluster,
    /// The union, wrapped as the single machine's vertex list.
    local_sets: Vec<Vec<u32>>,
    union: Vec<u32>,
    delta: f64,
    n_total: usize,
    max_k: usize,
    params: Params,
    engine: KCenterEngine,
    kcenter_cache: HashMap<usize, ServedKCenter>,
    diversity_cache: HashMap<usize, ServedDiversity>,
}

impl Snapshot<'_> {
    /// The merged coreset union this snapshot answers from.
    pub fn union(&self) -> &[u32] {
        &self.union
    }

    /// The frozen view of the indexed space (cross-check scans in tests
    /// and examples read the full dataset through this).
    pub fn space(&self) -> &EuclideanSpace {
        self.space
    }

    /// The merge slack `δ`: every indexed point is within `δ` of the
    /// union. `0` for an empty index.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Distance-memo counters for the warm query path.
    pub fn memo_stats(&self) -> mpc_core::MemoStats {
        self.memo.stats()
    }

    /// The rung-evaluation engine this snapshot's k-center queries use
    /// (resolved from `KCENTER_ENGINE` / the union's dimension at
    /// snapshot time).
    pub fn engine(&self) -> KCenterEngine {
        self.engine
    }

    /// Serves a k-center answer (cached per `k`). Defined on an empty
    /// index: no centers, radius `0`.
    ///
    /// Requires `k ≤ coreset_k`: the per-shard coresets must be at least
    /// as selective as the query for the composability guarantee.
    pub fn kcenter(&mut self, k: usize) -> ServedKCenter {
        assert!(k >= 1, "k must be positive");
        assert!(
            k <= self.max_k,
            "k = {k} exceeds coreset_k = {}; rebuild the index with a larger coreset",
            self.max_k
        );
        if let Some(hit) = self.kcenter_cache.get(&k) {
            return hit.clone();
        }
        let served = self.kcenter_uncached(k);
        self.kcenter_cache.insert(k, served.clone());
        served
    }

    fn kcenter_uncached(&mut self, k: usize) -> ServedKCenter {
        // Coarse stage: Q = GMM(U, k) is a 2-approximation on the union,
        // its would-be next radius is exactly r(U, Q).
        let coarse = gmm(self.space, &self.union, k);
        let r = coarse.covering_radius();
        let q = coarse.selected;

        // Degenerate: the union has ≤ k distinct-ish locations (also
        // covers the empty index: no centers, radius 0, δ = 0).
        if q.len() < k || r <= 0.0 {
            return ServedKCenter {
                centers: to_point_ids(&q),
                union_radius: r.max(0.0),
                radius: r.max(0.0) + self.delta,
                delta: self.delta,
                boundary_index: 0,
            };
        }

        let t = self.params.ladder_len(4.0, 1);
        let mut search = LadderSearch::new(t);
        search.seed(0, q);
        let boundary = match self.engine {
            KCenterEngine::AllPairs => {
                let mut rungs = UnionKCenterRungs {
                    memo: &self.memo,
                    local_sets: &self.local_sets,
                    r,
                    k,
                    n: self.n_total,
                    params: &self.params,
                };
                search.search(
                    &mut self.cluster,
                    &mut rungs,
                    BoundaryMode::LastAccept,
                    self.params.boundary_search,
                )
            }
            KCenterEngine::Grid => {
                let mut rungs = UnionGridRungs {
                    space: self.space,
                    local_sets: &self.local_sets,
                    r,
                    k,
                    params: &self.params,
                    stats: KernelStats::default(),
                };
                search.search(
                    &mut self.cluster,
                    &mut rungs,
                    BoundaryMode::LastAccept,
                    self.params.boundary_search,
                )
            }
        };
        let centers_raw = search.take(boundary).expect("boundary was evaluated");
        debug_assert!(centers_raw.len() <= k);
        let union_radius = covering_radius(
            &mut self.cluster,
            self.space,
            &self.local_sets,
            &centers_raw,
        );
        ServedKCenter {
            centers: to_point_ids(&centers_raw),
            union_radius,
            radius: union_radius + self.delta,
            delta: self.delta,
            boundary_index: boundary,
        }
    }

    /// Serves a k-diversity answer (cached per `k`). Defined on an empty
    /// or tiny index: returns what the union has, diversity per
    /// [`min_pairwise_distance`] conventions (∞ below two points).
    ///
    /// Requires `2 ≤ k ≤ coreset_k`.
    pub fn kdiversity(&mut self, k: usize) -> ServedDiversity {
        assert!(k >= 2, "diversity needs k >= 2");
        assert!(
            k <= self.max_k,
            "k = {k} exceeds coreset_k = {}; rebuild the index with a larger coreset",
            self.max_k
        );
        if let Some(hit) = self.diversity_cache.get(&k) {
            return hit.clone();
        }
        let served = self.kdiversity_uncached(k);
        self.diversity_cache.insert(k, served.clone());
        served
    }

    fn kdiversity_uncached(&mut self, k: usize) -> ServedDiversity {
        // Coarse stage: div(GMM(U, k)) is a 2-approximation of div_k(U).
        let coarse = gmm(self.space, &self.union, k);
        let r = coarse.diversity();
        let q = coarse.selected;

        if q.len() < k || r <= 0.0 || !r.is_finite() {
            let subset = to_point_ids(&q);
            let diversity = min_pairwise_distance(self.space, &subset);
            return ServedDiversity {
                subset,
                diversity,
                delta: self.delta,
                boundary_index: 0,
            };
        }

        let t = self.params.ladder_len(4.0, 1);
        let mut rungs = UnionDiversityRungs {
            memo: &self.memo,
            local_sets: &self.local_sets,
            r,
            k,
            n: self.n_total,
            params: &self.params,
        };
        let mut search = LadderSearch::new(t);
        search.seed(0, q);
        let boundary = search.search(
            &mut self.cluster,
            &mut rungs,
            BoundaryMode::LastAccept,
            self.params.boundary_search,
        );
        let subset_raw = search.take(boundary).expect("boundary was evaluated");
        debug_assert_eq!(subset_raw.len(), k);
        let subset = to_point_ids(&subset_raw);
        let diversity = min_pairwise_distance(self.space, &subset);
        ServedDiversity {
            subset,
            diversity,
            delta: self.delta,
            boundary_index: boundary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_core::diversity::mpc_diversity;
    use mpc_core::kcenter::mpc_kcenter;
    use mpc_metric::datasets;
    use mpc_metric::MetricSpace;

    fn insert_all(index: &mut DiversityIndex, points: &PointSet) {
        for i in 0..points.len() as u32 {
            index.insert(points.coords(PointId(i)));
        }
    }

    fn realized_radius(space: &EuclideanSpace, centers: &[PointId]) -> f64 {
        (0..space.n() as u32)
            .map(|v| dist_point_to_set(space, PointId(v), centers))
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn empty_index_serves_defined_answers() {
        let mut index = DiversityIndex::new(3, IndexParams::new(4, 8, 1));
        let mut snap = index.snapshot();
        let kc = snap.kcenter(2);
        assert!(kc.centers.is_empty());
        assert_eq!(kc.radius, 0.0);
        let kd = snap.kdiversity(2);
        assert!(kd.subset.is_empty());
        assert_eq!(kd.diversity, f64::INFINITY);
        drop(snap);
        assert_eq!(index.stats().delta, 0.0);
    }

    #[test]
    fn kcenter_radius_certified_against_batch() {
        let points = datasets::gaussian_clusters(600, 3, 6, 0.05, 11);
        let mut index = DiversityIndex::new(3, IndexParams::new(4, 12, 11));
        insert_all(&mut index, &points);
        let eps = index.params.epsilon;
        let mut snap = index.snapshot();
        for k in [2usize, 4, 6] {
            let served = snap.kcenter(k);
            // Soundness: the served radius upper-bounds the realized one.
            let realized = realized_radius(snap.space, &served.centers);
            assert!(
                served.radius >= realized - 1e-9,
                "k={k}: served {} < realized {realized}",
                served.radius
            );
            // Quality: within the composable-coreset factor of batch
            // Algorithm 5 on the identical snapshot. batch ≥ r*(P), so
            // served ≤ 2(1+ε)·r*(P) + (2(1+ε)+1)·δ ≤ the bound below.
            let batch = mpc_kcenter(snap.space, k, &Params::practical(1, eps, 11));
            let factor = 2.0 * (1.0 + eps);
            assert!(
                served.radius <= factor * batch.radius + (factor + 1.0) * served.delta + 1e-9,
                "k={k}: served {} vs batch {} delta {}",
                served.radius,
                batch.radius,
                served.delta
            );
        }
    }

    #[test]
    fn kdiversity_certified_against_batch() {
        let points = datasets::uniform_cube(500, 3, 23);
        let mut index = DiversityIndex::new(3, IndexParams::new(4, 10, 23));
        insert_all(&mut index, &points);
        let eps = index.params.epsilon;
        let mut snap = index.snapshot();
        for k in [3usize, 5, 8] {
            let served = snap.kdiversity(k);
            assert_eq!(served.subset.len(), k);
            // Exactness of the reported figure.
            let recomputed = min_pairwise_distance(snap.space, &served.subset);
            assert_eq!(served.diversity, recomputed);
            // Quality: div_k(P) ≥ batch diversity, and the union ladder
            // serves ≥ (div_k(P) − 2δ)/(2+ε).
            let batch = mpc_diversity(snap.space, k, &Params::practical(1, eps, 23));
            assert!(
                served.diversity >= (batch.diversity - 2.0 * served.delta) / (2.0 + eps) - 1e-9,
                "k={k}: served {} vs batch {} delta {}",
                served.diversity,
                batch.diversity,
                served.delta
            );
        }
    }

    #[test]
    fn lazy_staleness_rebuilds_only_past_threshold() {
        let points = datasets::uniform_cube(200, 2, 5);
        let mut index = DiversityIndex::new(2, IndexParams::new(2, 8, 5));
        insert_all(&mut index, &points);
        drop(index.snapshot());
        let built = index.stats().rebuilds;
        assert_eq!(built, 2, "first snapshot builds every non-empty shard");
        // A trickle below the 50% threshold must not rebuild anything.
        for i in 0..20 {
            index.insert(&[i as f64, -1.0]);
        }
        drop(index.snapshot());
        assert_eq!(index.stats().rebuilds, built, "20/200 is under threshold");
        // Past the threshold, the stale shards rebuild lazily.
        for i in 0..200 {
            index.insert(&[i as f64, -2.0]);
        }
        drop(index.snapshot());
        assert_eq!(index.stats().rebuilds, built + 2);
        assert!(index.stats().delta.is_finite());
    }

    #[test]
    fn served_answers_cached_per_k() {
        let points = datasets::uniform_cube(150, 2, 9);
        let mut index = DiversityIndex::new(2, IndexParams::new(2, 8, 9));
        insert_all(&mut index, &points);
        let mut snap = index.snapshot();
        let first = snap.kcenter(4);
        let evals_after_first = snap.memo_stats();
        let second = snap.kcenter(4);
        assert_eq!(first, second);
        // The cache hit must not touch the memo at all.
        assert_eq!(snap.memo_stats().misses, evals_after_first.misses);
        assert_eq!(snap.memo_stats().hits, evals_after_first.hits);
    }

    #[test]
    fn insert_slack_keeps_delta_honest() {
        let mut index = DiversityIndex::new(2, IndexParams::new(1, 4, 3));
        for i in 0..16 {
            index.insert(&[i as f64, 0.0]);
        }
        index.refresh_all();
        // A far outlier inserted post-build must widen δ to at least its
        // distance from the frozen coreset.
        let far = [1e4, 1e4];
        index.insert(&far);
        let stats = index.stats();
        assert!(
            stats.delta >= 1e4,
            "outlier slack not tracked: δ = {}",
            stats.delta
        );
        // And the served radius stays a true cover bound.
        let mut snap = index.snapshot();
        let served = snap.kcenter(2);
        assert!(served.radius >= realized_radius(snap.space, &served.centers) - 1e-9);
    }
}
