//! The serving contract, property-tested (ISSUE 7 satellite):
//!
//! 1. **Incremental ≡ batch-rebuild.** An index that grew insert-by-insert
//!    (with lazy staleness rebuilds churning along the way) must, after
//!    `refresh_all`, serve answers bit-identical to a fresh index that saw
//!    the same stream in one go — shard membership and coresets are pure
//!    functions of the insertion sequence.
//! 2. **Thread independence.** Every served digest (center ids, radius
//!    bits, δ bits, boundary index) is identical at worker threads
//!    ∈ {1, 2, 8}.
//! 3. **Certified quality.** Lazy-path snapshots stay *sound* (served
//!    radius ≥ realized radius over all indexed points) and refreshed
//!    snapshots stay within the composable-coreset factor of batch
//!    Algorithm 5 / Algorithm 2 on the identical point set.
//!
//! Streams are adversarial on purpose: coordinates come from a small
//! integer grid (forcing exact duplicates — the same failure family as
//! the CCFM streaming bug fixed in this PR) and the insertion order is a
//! seeded permutation, so clusters can arrive contiguously or scattered.

use mpc_core::diversity::mpc_diversity;
use mpc_core::kcenter::mpc_kcenter;
use mpc_core::Params;
use mpc_metric::{dist_point_to_set, EuclideanSpace, MetricSpace, PointId, PointSet};
use mpc_serving::{DiversityIndex, IndexParams, ServedDiversity, ServedKCenter};
use proptest::prelude::*;
use rayon::with_threads;

const DIM: usize = 3;
const CORESET_K: usize = 8;
const SEED: u64 = 77;
const EPS: f64 = 0.1;

/// Grid-valued rows with forced duplicates: each generated cell appears
/// 1–3 times in the stream.
fn arb_dup_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec((prop::collection::vec(-6i64..6, DIM), 0u8..3), 12..60).prop_map(
        |entries| {
            let mut rows = Vec::new();
            for (cell, dups) in entries {
                let row: Vec<f64> = cell.iter().map(|&c| c as f64 * 0.5).collect();
                for _ in 0..=dups {
                    rows.push(row.clone());
                }
            }
            rows
        },
    )
}

/// Deterministic Fisher–Yates from an LCG — adversarial orderings without
/// a shuffle combinator in the proptest shim.
fn permute(rows: &mut [Vec<f64>], seed: u64) {
    let mut state = seed | 1;
    for i in (1..rows.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = ((state >> 33) as usize) % (i + 1);
        rows.swap(i, j);
    }
}

fn kc_digest(s: &ServedKCenter) -> Vec<u64> {
    let mut d: Vec<u64> = s.centers.iter().map(|p| p.0 as u64).collect();
    d.push(s.radius.to_bits());
    d.push(s.union_radius.to_bits());
    d.push(s.delta.to_bits());
    d.push(s.boundary_index as u64);
    d
}

fn kd_digest(s: &ServedDiversity) -> Vec<u64> {
    let mut d: Vec<u64> = s.subset.iter().map(|p| p.0 as u64).collect();
    d.push(s.diversity.to_bits());
    d.push(s.delta.to_bits());
    d.push(s.boundary_index as u64);
    d
}

fn realized_radius(space: &EuclideanSpace, centers: &[PointId]) -> f64 {
    (0..space.n() as u32)
        .map(|v| dist_point_to_set(space, PointId(v), centers))
        .fold(0.0f64, f64::max)
}

/// One full serving run at a fixed thread count; returns the digests of
/// the final (refreshed) answers and asserts the lazy-path invariants
/// along the way.
fn run_stream(rows: &[Vec<f64>], shards: usize, k: usize) -> (Vec<u64>, Vec<u64>) {
    // Index A grows incrementally, with snapshots (and their lazy
    // rebuilds) interleaved mid-stream.
    let mut a = DiversityIndex::new(DIM, IndexParams::new(shards, CORESET_K, SEED));
    for (i, row) in rows.iter().enumerate() {
        a.insert(row);
        if i % 17 == 16 {
            let mut snap = a.snapshot();
            let served = snap.kcenter(k);
            // Lazy-path soundness: the served radius covers every point
            // indexed so far, staleness slack included.
            let realized = realized_radius(a.space(), &served.centers);
            assert!(
                served.radius >= realized - 1e-9,
                "mid-stream i={i}: served {} < realized {realized}",
                served.radius
            );
        }
    }
    a.refresh_all();

    // Index B sees the identical stream in one burst.
    let mut b = DiversityIndex::new(DIM, IndexParams::new(shards, CORESET_K, SEED));
    for row in rows {
        b.insert(row);
    }
    b.refresh_all();

    let mut sa = a.snapshot();
    let mut sb = b.snapshot();
    let (ka, kb) = (sa.kcenter(k), sb.kcenter(k));
    assert_eq!(
        kc_digest(&ka),
        kc_digest(&kb),
        "incremental vs batch-rebuild k-center diverged"
    );
    let (da, db) = (sa.kdiversity(k), sb.kdiversity(k));
    assert_eq!(
        kd_digest(&da),
        kd_digest(&db),
        "incremental vs batch-rebuild k-diversity diverged"
    );
    (kc_digest(&ka), kd_digest(&da))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn incremental_equals_batch_rebuild_across_threads(
        rows in arb_dup_rows(),
        shard_i in 0usize..3,
        order_seed in any::<u64>(),
    ) {
        let shards = [1usize, 4, 16][shard_i];
        let k = 4usize;
        let mut rows = rows;
        permute(&mut rows, order_seed);

        let mut reference: Option<(Vec<u64>, Vec<u64>)> = None;
        for &threads in &[1usize, 2, 8] {
            let digests = with_threads(threads, || run_stream(&rows, shards, k));
            match &reference {
                None => reference = Some(digests),
                Some(r) => prop_assert_eq!(
                    r,
                    &digests,
                    "served digests changed at threads={}",
                    threads
                ),
            }
        }
    }

    #[test]
    fn served_answers_within_certified_factor_of_batch(
        rows in arb_dup_rows(),
        shard_i in 0usize..3,
        order_seed in any::<u64>(),
    ) {
        let shards = [1usize, 4, 16][shard_i];
        let k = 4usize;
        let mut rows = rows;
        permute(&mut rows, order_seed);

        let mut index = DiversityIndex::new(DIM, IndexParams::new(shards, CORESET_K, SEED));
        for row in &rows {
            index.insert(row);
        }
        let mut snap = index.snapshot();
        let served_kc = snap.kcenter(k);
        let served_kd = snap.kdiversity(k);
        let delta = snap.delta();
        prop_assert!(delta.is_finite());

        // Batch Algorithms 5 and 2 on the identical point set.
        let space = EuclideanSpace::new(PointSet::from_rows(&rows));
        let params = Params::practical(1, EPS, SEED);
        let batch_kc = mpc_kcenter(&space, k, &params);
        let factor = 2.0 * (1.0 + EPS);
        prop_assert!(
            served_kc.radius <= factor * batch_kc.radius + (factor + 1.0) * delta + 1e-9,
            "k-center: served {} vs batch {} delta {}",
            served_kc.radius, batch_kc.radius, delta
        );
        let realized = realized_radius(snap.space(), &served_kc.centers);
        prop_assert!(
            served_kc.radius >= realized - 1e-9,
            "k-center: served {} below realized {}",
            served_kc.radius, realized
        );

        let batch_kd = mpc_diversity(&space, k, &params);
        prop_assert!(
            served_kd.diversity >= (batch_kd.diversity - 2.0 * delta) / (2.0 + EPS) - 1e-9,
            "k-diversity: served {} vs batch {} delta {}",
            served_kd.diversity, batch_kd.diversity, delta
        );
    }
}
