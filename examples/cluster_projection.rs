//! Cluster cost projection: what would this execution cost on a real
//! cluster? Projects the simulator's exact round/communication ledger
//! through alpha–beta cost models — the runnable miniature of E12.
//!
//! ```text
//! cargo run --release --example cluster_projection
//! ```

use mpc_clustering::core::{kcenter, Params};
use mpc_clustering::metric::{datasets, EuclideanSpace};
use mpc_clustering::sim::{Cluster, CostModel};

fn main() {
    let n = 8_000;
    let k = 10;
    let m = 16;
    let metric = EuclideanSpace::new(datasets::gaussian_clusters(n, 2, 10, 0.01, 42));
    let params = Params::practical(m, 0.1, 7);

    let mut cluster = Cluster::new(m, 7);
    let res = kcenter::mpc_kcenter_on(&mut cluster, &metric, k, &params);
    let ledger = cluster.into_ledger();

    println!(
        "MPC k-center on n = {n}, m = {m}: radius {:.4}, {} rounds, {} words max/machine\n",
        res.radius,
        ledger.rounds(),
        ledger.max_machine_words()
    );
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "profile", "total (s)", "latency (s)", "transfer (s)"
    );
    for (name, model) in [
        ("datacenter", CostModel::datacenter()),
        ("mapreduce", CostModel::mapreduce()),
        ("wide-area", CostModel::wide_area()),
    ] {
        let (lat, xfer) = model.breakdown(&ledger);
        println!("{name:<12} {:>14.3} {lat:>14.3} {xfer:>14.6}", lat + xfer);
    }
    println!(
        "\nThe transfer column is microscopic — Õ(mk) communication at work — so the\n\
         projected cost is pure round latency. That is exactly why shaving the round\n\
         count (the paper's O(log 1/ε) constant-round design) is the whole game on\n\
         MapReduce-style clusters."
    );
}
