//! Bit-exactness probe for the Algorithm 5 ladder: prints every output
//! field of `mpc_kcenter_on` (center ids, `f64` radii *as raw bits*) plus a
//! digest of the full MPC ledger, for fixed configs at 1, 2, and 8 threads.
//!
//! Diffing this program's output across a kernel-engineering change is the
//! acceptance check that the rewiring was value-preserving: the ladder's
//! centers, radii, round structure, per-machine traffic, and peak memory
//! must all be byte-for-byte identical before and after.
//!
//! ```text
//! cargo run --release --example ladder_digest
//! ```

use mpc_clustering::core::grid::mpc_kcenter_grid_on;
use mpc_clustering::core::kcenter::mpc_kcenter_on;
use mpc_clustering::core::Params;
use mpc_clustering::metric::{datasets, EuclideanSpace, MetricSpace, PointId};
use mpc_clustering::sim::{Cluster, TransportKind};
use rayon::with_threads;

/// FNV-1a over a byte stream; enough to fingerprint a ledger transcript.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn main() {
    // The dim=32 config matters for the speed tiers: wide rows engage the
    // SoA/sketch fast paths (dim ≥ 16), so diffing this output across
    // `KCENTER_SPEED` values actually exercises them; the dim=3 configs
    // pin the narrow-row kernels.
    for (n, dim, m, k, seed) in [
        (900usize, 3usize, 4usize, 6usize, 42u64),
        (600, 3, 8, 10, 7),
        (700, 32, 4, 8, 21),
    ] {
        let space = EuclideanSpace::new(datasets::gaussian_clusters(n, dim, k, 0.05, seed));
        let params = Params::practical(m, 0.1, seed);
        for threads in [1usize, 2, 8] {
            let (res, ledger) = with_threads(threads, || {
                let mut cluster = Cluster::new(m, seed);
                let out = mpc_kcenter_on(&mut cluster, &space, k, &params);
                (out, cluster.into_ledger())
            });
            let mut h = Fnv::new();
            for r in ledger.records() {
                h.eat(r.label.as_bytes());
                for io in &r.per_machine {
                    h.eat(&io.sent.to_le_bytes());
                    h.eat(&io.received.to_le_bytes());
                }
            }
            println!(
                "n={n} dim={dim} m={m} k={k} seed={seed} t={threads} centers={:?} \
                 radius={:016x} coarse_r={:016x} boundary={} rounds={} \
                 words={} peak_mem={} evals={} probes={} ledger_fnv={:016x}",
                res.centers,
                res.radius.to_bits(),
                res.coarse_r.to_bits(),
                res.boundary_index,
                ledger.rounds(),
                ledger.total_words(),
                ledger.max_machine_memory(),
                res.telemetry.ladder_evals,
                res.telemetry.ladder_probes,
                h.0
            );
            // Wall-clock phase split on stderr only: it is host- and
            // thread-dependent, and stdout must stay byte-diffable.
            eprintln!(
                "  phases(t={threads}): coarse={:.4}s ladder={:.4}s finalize={:.4}s",
                res.telemetry.phases.coarse_s,
                res.telemetry.phases.ladder_s,
                res.telemetry.phases.finalize_s
            );
            // Memo cache behavior per speed tier, also stderr-only: the
            // counts are deterministic, but keeping stdout fixed to the
            // ladder outputs is what lets CI diff digests across tiers.
            if let Some(ms) = &res.telemetry.memo {
                eprintln!(
                    "  memo(t={threads} tier={}): hits={} misses={} flushes={} \
                     sorted_rows={}/{} stored_bytes={}",
                    space.speed_tier().name(),
                    ms.hits,
                    ms.misses,
                    ms.flushes,
                    ms.sorted_rows,
                    ms.entries,
                    ms.bytes()
                );
            }
            // Fast-path kernel tallies, stderr-only for the same reason:
            // which kernel answered is tier-dependent by design; *what* it
            // answered (stdout above) must not be.
            if let Some(ks) = &res.telemetry.kernels {
                eprintln!(
                    "  kernels(t={threads} tier={}): single {}r/{}i multi-τ {}r/{}i \
                     sketch_rejects={} exact_fallbacks={}",
                    space.speed_tier().name(),
                    ks.run_pairs,
                    ks.indexed_pairs,
                    ks.taus_run_pairs,
                    ks.taus_indexed_pairs,
                    ks.sketch_rejects,
                    ks.exact_fallbacks
                );
            }
        }
    }

    // Grid-engine digest: the same bit-exactness contract for the spatial
    // hashing engine. The grid ladder touches only exact f64 distances
    // (never the SoA/sketch fast paths), so these stdout lines must be
    // identical across `KCENTER_SPEED` tiers too — CI diffs them together
    // with the all-pairs lines above.
    for (n, dim, m, k, seed) in [
        (900usize, 3usize, 4usize, 6usize, 42u64),
        (800, 2, 8, 10, 7),
        (700, 8, 4, 8, 21),
    ] {
        let space = EuclideanSpace::new(datasets::user_embeddings(n, dim, k, 0.03, 1e-3, seed));
        let params = Params::practical(m, 0.1, seed);
        for threads in [1usize, 2, 8] {
            let (res, ledger) = with_threads(threads, || {
                let mut cluster = Cluster::new(m, seed);
                let out = mpc_kcenter_grid_on(&mut cluster, &space, k, &params);
                (out, cluster.into_ledger())
            });
            let mut h = Fnv::new();
            for r in ledger.records() {
                h.eat(r.label.as_bytes());
                for io in &r.per_machine {
                    h.eat(&io.sent.to_le_bytes());
                    h.eat(&io.received.to_le_bytes());
                }
            }
            println!(
                "engine=grid n={n} dim={dim} m={m} k={k} seed={seed} t={threads} \
                 centers={:?} radius={:016x} coarse_r={:016x} boundary={} rounds={} \
                 words={} peak_mem={} evals={} probes={} ledger_fnv={:016x}",
                res.centers,
                res.radius.to_bits(),
                res.coarse_r.to_bits(),
                res.boundary_index,
                ledger.rounds(),
                ledger.total_words(),
                ledger.max_machine_memory(),
                res.telemetry.ladder_evals,
                res.telemetry.ladder_probes,
                h.0
            );
            // Grid tallies on stderr: cell counts are deterministic, but
            // only the ladder outputs above take part in the CI diff.
            if let Some(ks) = &res.telemetry.kernels {
                eprintln!(
                    "  grid-kernels(t={threads}): cells={} stencil_cells={} pairs={}",
                    ks.grid_cells, ks.grid_stencil_cells, ks.grid_pairs
                );
            }
        }
    }

    // Direct multi-τ sweep digest: one candidate pass classified against a
    // whole rung schedule through `count_within_taus` /
    // `neighbors_within_taus`. The k-center runs above reach these kernels
    // through the distance memo; this section pins them raw, so a tier- or
    // thread-dependent rung verdict cannot hide behind caching.
    let (n, dim) = (4_000usize, 32usize);
    let space = EuclideanSpace::new(datasets::gaussian_clusters(n, dim, 8, 0.05, 11));
    let candidates: Vec<u32> = (0..n as u32).collect();
    let base = space.dist(PointId(0), PointId(n as u32 / 2));
    let rungs: Vec<f64> = (0..12).map(|i| base * 0.15 * 1.25f64.powi(i)).collect();
    for threads in [1usize, 2, 8] {
        let mut h = Fnv::new();
        with_threads(threads, || {
            for v in (0..n as u32).step_by(n / 16) {
                for c in space.count_within_taus(PointId(v), &candidates, &rungs) {
                    h.eat(&(c as u64).to_le_bytes());
                }
                for row in space.neighbors_within_taus(PointId(v), &candidates, &rungs) {
                    h.eat(&(row.len() as u64).to_le_bytes());
                    for c in row {
                        h.eat(&c.to_le_bytes());
                    }
                }
            }
        });
        println!(
            "taus-sweep n={n} dim={dim} rungs={} t={threads} digest={:016x}",
            rungs.len(),
            h.0
        );
    }
    if let Some(ks) = space.kernel_stats() {
        eprintln!(
            "  taus-sweep kernels (tier={}): multi-τ {}r/{}i sketch_rejects={} \
             exact_fallbacks={}",
            space.speed_tier().name(),
            ks.taus_run_pairs,
            ks.taus_indexed_pairs,
            ks.sketch_rejects,
            ks.exact_fallbacks
        );
    }

    // Transport parity: the same ladder driven over the byte-level
    // loopback wire (every payload encoded into frames, transited, and
    // decoded back) must reproduce the sim reference exactly — identical
    // centers, radius bits, and ledger transcript. Transports are pinned
    // explicitly here, so these stdout lines are also invariant under
    // `KCENTER_TRANSPORT` and take part in the CI digest diff. Wire byte
    // counters and encode/decode wall-clock go to stderr only.
    for (n, dim, m, k, seed) in [
        (900usize, 3usize, 4usize, 6usize, 42u64),
        (600, 3, 8, 10, 7),
        (700, 32, 4, 8, 21),
    ] {
        let space = EuclideanSpace::new(datasets::gaussian_clusters(n, dim, k, 0.05, seed));
        let params = Params::practical(m, 0.1, seed);
        for threads in [1usize, 2, 8] {
            let run = |kind: TransportKind| {
                with_threads(threads, || {
                    let mut cluster = Cluster::with_transport(m, seed, kind);
                    let out = mpc_kcenter_on(&mut cluster, &space, k, &params);
                    let wire = cluster.wire_summary();
                    (out, cluster.into_ledger(), wire)
                })
            };
            let (sim_res, sim_ledger, _) = run(TransportKind::Sim);
            let (loop_res, loop_ledger, wire) = run(TransportKind::Loopback);
            // A transcript mismatch aborts the whole digest run loudly —
            // better than printing lines CI would diff as "clean".
            loop_ledger.assert_identical(&sim_ledger, "loopback vs sim ladder");
            assert_eq!(sim_res.centers, loop_res.centers, "center parity");
            assert_eq!(
                sim_res.radius.to_bits(),
                loop_res.radius.to_bits(),
                "radius bit parity"
            );
            let mut h = Fnv::new();
            for r in loop_ledger.records() {
                h.eat(r.label.as_bytes());
                for io in &r.per_machine {
                    h.eat(&io.sent.to_le_bytes());
                    h.eat(&io.received.to_le_bytes());
                }
            }
            let wire = wire.expect("loopback keeps wire stats");
            println!(
                "transport-parity n={n} dim={dim} m={m} k={k} seed={seed} t={threads} \
                 radius={:016x} rounds={} ledger_fnv={:016x} wire_rounds={} \
                 payload_bytes={} overhead_bytes={} setup_bytes={} violations={}",
                loop_res.radius.to_bits(),
                loop_ledger.rounds(),
                h.0,
                wire.rounds,
                wire.payload_bytes,
                wire.overhead_bytes,
                wire.setup_bytes,
                wire.conformance_violations
            );
            eprintln!(
                "  wire(t={threads}): frames={} encode={:.4}s decode={:.4}s transit={:.4}s \
                 arena_high_water={}B",
                wire.frames,
                wire.encode_s,
                wire.decode_s,
                wire.transit_s,
                wire.arena_high_water_bytes
            );
        }
    }
}
