//! Outlier robustness: plain k-center versus k-center with a z-outlier
//! budget on noisy data — the robustness story the paper's related-work
//! section traces through Charikar et al. and Malkomes et al.
//!
//! ```text
//! cargo run --release --example outlier_robustness
//! ```

use mpc_clustering::baselines::malkomes_outliers::malkomes_outliers_kcenter;
use mpc_clustering::baselines::outliers::charikar_outliers_kcenter;
use mpc_clustering::core::{kcenter, Params};
use mpc_clustering::metric::{datasets, EuclideanSpace, PointId, PointSet};
use rand::{RngExt, SeedableRng};

fn main() {
    // 500 sensor readings in 5 tight groups plus 10 corrupted readings
    // scattered far away.
    let n_good = 500;
    let n_noise = 10;
    let base = datasets::gaussian_clusters(n_good, 2, 5, 0.01, 42);
    let mut rows: Vec<Vec<f64>> = (0..n_good)
        .map(|i| base.coords(PointId(i as u32)).to_vec())
        .collect();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
    for _ in 0..n_noise {
        rows.push(vec![
            rng.random_range(-50.0..50.0),
            rng.random_range(-50.0..50.0),
        ]);
    }
    let metric = EuclideanSpace::new(PointSet::from_rows(&rows));
    let params = Params::practical(4, 0.1, 7);
    let k = 5;

    println!("k-center with k = {k} on {n_good} clean + {n_noise} corrupted readings:\n");

    let plain = kcenter::mpc_kcenter(&metric, k, &params);
    println!(
        "  (2+ε) MPC, no outlier budget      : radius {:>8.4}  — wrecked by the noise",
        plain.radius
    );

    let mpc_z = malkomes_outliers_kcenter(&metric, k, n_noise, &params);
    println!(
        "  Malkomes MPC, z = {n_noise} outliers      : radius {:>8.4}  ({} flagged, {} rounds)",
        mpc_z.radius,
        mpc_z.outliers.len(),
        mpc_z.telemetry.rounds
    );

    let seq_z = charikar_outliers_kcenter(&metric, k, n_noise);
    println!(
        "  Charikar sequential, z = {n_noise}       : radius {:>8.4}  ({} flagged)",
        seq_z.radius,
        seq_z.outliers.len()
    );

    println!(
        "\nWithout an outlier budget, {n_noise} junk points inflate the radius by ~{:.0}×;\n\
         both robust variants recover the true cluster scale. The (2+ε) algorithm of\n\
         this paper targets the clean problem — robust MPC variants at its factor are\n\
         listed as open in the paper's related work.",
        plain.radius / mpc_z.radius.max(1e-9)
    );
}
