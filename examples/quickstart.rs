//! Quickstart: run the paper's three MPC algorithms on a synthetic
//! clustered dataset and print what the simulator measured.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpc_clustering::core::{diversity, kcenter, ksupplier, Params};
use mpc_clustering::metric::{datasets, EuclideanSpace};

fn main() {
    // 2,000 points in 8 tight Gaussian clusters, simulated on 8 machines.
    let n = 2_000;
    let metric = EuclideanSpace::new(datasets::gaussian_clusters(n, 2, 8, 0.01, 42));
    let params = Params::practical(8, 0.1, 7);

    println!("== (2+ε)-approximation MPC k-center (Algorithm 5, Theorem 17) ==");
    let kc = kcenter::mpc_kcenter(&metric, 8, &params);
    println!("  centers:     {:?}", kc.centers);
    println!(
        "  radius:      {:.4} (coarse 4-approx estimate was {:.4})",
        kc.radius, kc.coarse_r
    );
    println!(
        "  cost:        {} MPC rounds, max {} words through any machine\n",
        kc.telemetry.rounds, kc.telemetry.max_machine_words
    );

    println!("== (2+ε)-approximation MPC k-diversity (Algorithm 2, Theorem 3) ==");
    let dv = diversity::mpc_diversity(&metric, 8, &params);
    println!("  subset:      {:?}", dv.subset);
    println!(
        "  diversity:   {:.4} (coarse 4-approx estimate was {:.4})",
        dv.diversity, dv.coarse_r
    );
    println!(
        "  cost:        {} MPC rounds, max {} words through any machine\n",
        dv.telemetry.rounds, dv.telemetry.max_machine_words
    );

    // k-supplier needs a bipartite instance: first 1,500 points play
    // customers, the rest suppliers.
    println!("== (3+ε)-approximation MPC k-supplier (Algorithm 6, Theorem 18) ==");
    let customers: Vec<u32> = (0..1_500).collect();
    let suppliers: Vec<u32> = (1_500..n as u32).collect();
    let ks = ksupplier::mpc_ksupplier(&metric, &customers, &suppliers, 8, &params);
    println!("  suppliers:   {:?}", ks.suppliers);
    println!("  radius:      {:.4}", ks.radius);
    println!(
        "  cost:        {} MPC rounds, max {} words through any machine",
        ks.telemetry.rounds, ks.telemetry.max_machine_words
    );
}
