//! Scaling study: how rounds and per-machine communication behave as the
//! cluster grows — a runnable miniature of experiments E4/E5.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use mpc_clustering::core::{kcenter, Params};
use mpc_clustering::metric::{datasets, EuclideanSpace};

fn main() {
    let n = 4_000;
    let k = 10;
    let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 31));

    println!("MPC k-center on n = {n}, k = {k}, sweeping the machine count m:\n");
    println!(
        "{:>4} {:>8} {:>22} {:>16} {:>12}",
        "m", "rounds", "max words/machine", "total words", "radius"
    );
    for m in [2usize, 4, 8, 16, 32] {
        let params = Params::practical(m, 0.1, 5);
        let res = kcenter::mpc_kcenter(&metric, k, &params);
        println!(
            "{:>4} {:>8} {:>22} {:>16} {:>12.4}",
            m,
            res.telemetry.rounds,
            res.telemetry.max_machine_words,
            res.telemetry.total_words,
            res.radius
        );
    }
    println!(
        "\nReading the table: rounds stay flat (constant-round algorithm), while the\n\
         per-machine communication grows ~linearly in m·k, matching the paper's Õ(mk)\n\
         bound. The radius is invariant to m up to sampling noise."
    );
}
