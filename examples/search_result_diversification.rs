//! Search-result diversification — k-diversity maximization in Hamming
//! space, the information-retrieval use case the paper's introduction
//! motivates.
//!
//! 5,000 candidate documents are represented as 256-bit topic fingerprints
//! (simhash-style). A result page should show k documents that are as
//! mutually dissimilar as possible: exactly remote-edge diversity
//! maximization under the Hamming metric.
//!
//! ```text
//! cargo run --release --example search_result_diversification
//! ```

use mpc_clustering::baselines::indyk::indyk_diversity;
use mpc_clustering::core::{diversity, Params};
use mpc_clustering::metric::{datasets, HammingSpace};

fn main() {
    let n = 5_000;
    let bits = 256;
    // Topic fingerprints: three latent topics with different densities,
    // interleaved — a crude but effective topical structure.
    let mut fingerprints = Vec::with_capacity(n);
    for topic in 0..3 {
        let density = 0.15 + 0.1 * topic as f64;
        let block = datasets::random_bitsets(n / 3 + 1, bits, density, 17 + topic as u64);
        fingerprints.extend(block);
    }
    fingerprints.truncate(n);
    let metric = HammingSpace::from_set_bits(n, bits, &fingerprints);

    let k = 10;
    let params = Params::practical(8, 0.1, 23);

    let ours = diversity::mpc_diversity(&metric, k, &params);
    let coreset = indyk_diversity(&metric, k, &params);
    let gmm = diversity::sequential_gmm_diversity(&metric, k);

    println!("Diversifying a {k}-result page out of {n} documents ({bits}-bit fingerprints):\n");
    println!(
        "  paper (2+ε) MPC     : min pairwise Hamming distance {:>5.0}  ({} rounds, {} words max/machine)",
        ours.diversity, ours.telemetry.rounds, ours.telemetry.max_machine_words
    );
    println!(
        "  Indyk 6-approx MPC  : min pairwise Hamming distance {:>5.0}  ({} rounds)",
        coreset.diversity, coreset.telemetry.rounds
    );
    println!(
        "  sequential GMM (2×) : min pairwise Hamming distance {:>5.0}  (needs all data on one machine)",
        gmm.diversity
    );
    println!(
        "\nThe (2+ε) algorithm closes the quality gap to the sequential optimum-factor\n\
         algorithm while staying fully distributed."
    );
}
