//! Sequence clustering under edit distance — k-center over strings, the
//! fully non-geometric "any metric space" demonstration.
//!
//! A synthetic amplicon-style dataset: `k_true` reference sequences, each
//! observed many times with random substitutions/indels (sequencing
//! noise). k-center under Levenshtein distance should recover one
//! representative per reference, with the covering radius tracking the
//! noise level.
//!
//! ```text
//! cargo run --release --example sequence_clustering
//! ```

use mpc_clustering::core::{assignment, Params};
use mpc_clustering::metric::EditDistanceSpace;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

fn random_seq(rng: &mut ChaCha8Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| BASES[rng.random_range(0..4)]).collect()
}

/// Mutate with per-base substitution probability `p_sub` and a couple of
/// random indels.
fn noisy_read(rng: &mut ChaCha8Rng, reference: &[u8], p_sub: f64, indels: usize) -> Vec<u8> {
    let mut read: Vec<u8> = reference
        .iter()
        .map(|&b| {
            if rng.random_range(0.0..1.0) < p_sub {
                BASES[rng.random_range(0..4)]
            } else {
                b
            }
        })
        .collect();
    for _ in 0..indels {
        let pos = rng.random_range(0..=read.len());
        if rng.random_range(0.0..1.0) < 0.5 && !read.is_empty() {
            read.remove(pos.min(read.len() - 1));
        } else {
            read.insert(pos, BASES[rng.random_range(0..4)]);
        }
    }
    read
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let k_true = 5;
    let reads_per_ref = 60;
    let seq_len = 40;

    let references: Vec<Vec<u8>> = (0..k_true).map(|_| random_seq(&mut rng, seq_len)).collect();
    let mut reads = Vec::new();
    for r in &references {
        for _ in 0..reads_per_ref {
            reads.push(noisy_read(&mut rng, r, 0.03, 2));
        }
    }
    let n = reads.len();
    let metric = EditDistanceSpace::new(&reads);

    let params = Params::practical(6, 0.1, 11);
    let (result, assign) = assignment::kcenter_with_assignment(&metric, k_true, &params);

    println!("Clustered {n} noisy reads (len ~{seq_len}, 5 references) under edit distance:\n");
    println!(
        "{:<9} {:>6} {:>8}   representative (first 40 bases)",
        "cluster", "size", "radius"
    );
    for (ci, center) in result.centers.iter().enumerate() {
        let seq = String::from_utf8_lossy(metric.string(*center));
        println!(
            "{ci:<9} {:>6} {:>8.1}   {}",
            assign.sizes[ci],
            assign.radii[ci],
            &seq[..seq.len().min(40)]
        );
    }
    println!(
        "\ncovering radius {:.1} edits — the noise scale (≈ {:.1} substitutions + 2 indels\n\
         per read), not the reference separation (~{} edits): the clustering recovered\n\
         the amplicon structure. {} MPC rounds, {} words max/machine.",
        result.radius,
        0.03 * seq_len as f64,
        (seq_len as f64 * 0.75).round(),
        result.telemetry.rounds,
        result.telemetry.max_machine_words,
    );
}
