//! High-QPS search-result diversification against one shared index — the
//! serving-side companion to `search_result_diversification.rs`.
//!
//! The batch example answers one k-diversity query with a full MPC run.
//! Real result pages arrive as a *stream*: documents keep being ingested
//! while thousands of small k-center / k-diversity queries hit the same
//! corpus. This example drives `mpc_serving::DiversityIndex` through that
//! shape: interleaved insert bursts and query bursts, every answer served
//! from the incrementally maintained shard coresets (lazy staleness
//! rebuilds; one warm distance memo per snapshot) instead of a batch
//! re-run over all points.
//!
//! The final digest line is consumed by CI, which re-runs this binary
//! across `KCENTER_SPEED` tiers and `KCENTER_THREADS` counts and diffs
//! the output byte-for-byte — the serving path inherits the repo-wide
//! bit-determinism contract.
//!
//! ```text
//! cargo run --release --example serving_diversification [bursts] [queries_per_burst]
//! ```

use std::time::Instant;

use mpc_clustering::metric::{datasets, MetricSpace};
use mpc_clustering::serving::{DiversityIndex, IndexParams};

fn main() {
    let mut args = std::env::args().skip(1);
    let bursts: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let queries_per_burst: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);

    let dim = 16;
    let total_points = 20_000;
    // Document embeddings: clustered topics, streamed topic-interleaved.
    let points = datasets::gaussian_clusters(total_points, dim, 12, 0.05, 29);

    let mut index = DiversityIndex::new(dim, IndexParams::new(8, 16, 29));
    let per_burst = total_points / bursts;

    let mut insert_ns = 0u128;
    let mut query_ns: Vec<u128> = Vec::with_capacity(bursts * queries_per_burst);
    let mut digest = 0u64;
    let mut last_memo = None;

    for burst in 0..bursts {
        // Ingest burst: absorb a slice of the stream (O(coreset_k)
        // distance evals per insert, no rebuilds on this path).
        let started = Instant::now();
        for i in burst * per_burst..(burst + 1) * per_burst {
            index.insert(points.coords(mpc_clustering::metric::PointId(i as u32)));
        }
        insert_ns += started.elapsed().as_nanos();

        // Query burst: one snapshot (lazy rebuilds happen here), then a
        // storm of small-k queries sharing its warm memo and answer
        // cache. Vary k so the cache doesn't trivialize the workload.
        let mut snap = index.snapshot();
        for q in 0..queries_per_burst {
            let k = 2 + (q % 9);
            let started = Instant::now();
            let kc = snap.kcenter(k);
            let kd = snap.kdiversity(k);
            query_ns.push(started.elapsed().as_nanos());
            digest = digest
                .wrapping_mul(0x100000001b3)
                .wrapping_add(kc.radius.to_bits())
                .wrapping_mul(0x100000001b3)
                .wrapping_add(kd.diversity.to_bits());
            for c in &kc.centers {
                digest = digest
                    .wrapping_mul(0x100000001b3)
                    .wrapping_add(c.0 as u64 + 1);
            }
            for s in &kd.subset {
                digest = digest
                    .wrapping_mul(0x100000001b3)
                    .wrapping_add(s.0 as u64 + 1);
            }
        }
        last_memo = Some(snap.memo_stats());
    }

    query_ns.sort_unstable();
    let p = |q: f64| query_ns[((query_ns.len() - 1) as f64 * q) as usize] as f64 / 1e3;
    let stats = index.stats();
    let total_queries = bursts * queries_per_burst;

    println!(
        "Served {total_queries} k-center+k-diversity query pairs over a stream of {} documents:\n",
        stats.points
    );
    println!(
        "  insert throughput : {:>9.0} points/s  ({} shards, {} coreset rebuilds total)",
        stats.points as f64 / (insert_ns as f64 / 1e9),
        stats.shards,
        stats.rebuilds
    );
    println!(
        "  query latency     : p50 {:>8.1} µs   p95 {:>8.1} µs   p99 {:>8.1} µs",
        p(0.50),
        p(0.95),
        p(0.99)
    );
    println!("  merge slack δ     : {:>9.4}", stats.delta);

    // Observability for the local compute behind the answers: the last
    // snapshot's distance-memo counters and the index space's cumulative
    // fast-path kernel tallies. Tier- and thread-dependent, so they go to
    // stderr — CI's byte-diff watches stdout only.
    if let Some(memo) = last_memo {
        eprintln!(
            "last snapshot memo: {} rows resident ({} sorted), {} hits / {} misses, {} sorted builds",
            memo.entries, memo.sorted_rows, memo.hits, memo.misses, memo.sorted_builds
        );
    }
    match index.space().kernel_stats() {
        Some(k) => eprintln!(
            "kernel tallies: single {} run / {} indexed, multi-τ {} run / {} indexed, \
             {} sketch rejects, {} exact fallbacks",
            k.run_pairs,
            k.indexed_pairs,
            k.taus_run_pairs,
            k.taus_indexed_pairs,
            k.sketch_rejects,
            k.exact_fallbacks
        ),
        None => eprintln!("kernel tallies: none (exact tier)"),
    }

    println!("\nserving digest: {digest:016x}");
}
