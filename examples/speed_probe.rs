//! Ad-hoc wall-clock breakdown of the SoA fast path's building blocks —
//! not a benchmark (no harness, stderr only); used to attribute time
//! between the SIMD tile kernels and the surrounding plumbing.

use std::time::Instant;

use mpc_clustering::metric::{datasets, EuclideanSpace, MetricSpace, SpeedTier};

fn main() {
    let n = 100_000usize;
    let dim = 32usize;
    let q = 1024usize;
    let ps = datasets::uniform_cube(n, dim, 7);
    let metric = EuclideanSpace::new(ps).with_speed_tier(SpeedTier::SoaSketch);
    let tau = {
        // Same quantile the bench uses.
        let mut ds = Vec::new();
        for i in 0..500u32 {
            for j in (i + 1)..500 {
                ds.push(metric.dist(
                    mpc_clustering::metric::PointId(i),
                    mpc_clustering::metric::PointId(j),
                ));
            }
        }
        ds.sort_by(f64::total_cmp);
        ds[ds.len() / 5]
    };
    let candidates: Vec<u32> = (0..n as u32).collect();
    let vs: Vec<u32> = (0..q).map(|i| (i * 7919 % n) as u32).collect();

    // Reject-rate probe: how much work can the sketch actually skip here?
    let soa_space =
        EuclideanSpace::new(datasets::uniform_cube(n, dim, 7)).with_speed_tier(SpeedTier::Soa);
    for (label, space) in [("soa", &soa_space), ("soa+sketch", &metric)] {
        let t0 = Instant::now();
        let counts = space.count_within_many(&vs, &candidates, tau);
        let dt = t0.elapsed().as_secs_f64();
        let total: usize = counts.iter().sum();
        eprintln!(
            "{label:11} tau={tau:.4} total_within={total} time={dt:.3}s ({:.2} ns/pair)",
            dt * 1e9 / (n as f64 * q as f64)
        );
    }
}
