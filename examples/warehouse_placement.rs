//! Warehouse placement on a road network — k-supplier in a genuinely
//! non-Euclidean metric (shortest-path distances).
//!
//! A retailer has 400 stores (customers) on a 600-junction road network
//! and may open k warehouses among 120 candidate depot sites (suppliers).
//! The objective is the classic k-supplier one: minimize the worst-case
//! driving distance from any store to its nearest warehouse.
//!
//! ```text
//! cargo run --release --example warehouse_placement
//! ```

use mpc_clustering::core::{ksupplier, Params};
use mpc_clustering::metric::{datasets, GraphMetricSpace, MetricSpace, PointId};

fn main() {
    // Road network: 600 junctions, spanning tree + 150 chords, weights in
    // [1, 10] "minutes of driving" (few chords = a genuinely spread-out
    // network where warehouse count matters).
    let junctions = 600;
    let edges = datasets::random_road_network(junctions, 150, 11);
    let metric =
        GraphMetricSpace::from_edges(junctions, &edges).expect("generated network is connected");

    // Every 5th junction is a candidate depot site; the rest host stores.
    let suppliers: Vec<u32> = (0..junctions as u32).step_by(5).collect();
    let customers: Vec<u32> = (0..junctions as u32).filter(|j| j % 5 != 0).collect();

    // The floor: worst-case drive if *every* depot were open.
    let floor = customers
        .iter()
        .map(|&c| {
            suppliers
                .iter()
                .map(|&s| metric.dist(PointId(c), PointId(s)))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0f64, f64::max);
    println!(
        "floor (all {} depots open): worst-case drive {floor:.1} min\n",
        suppliers.len()
    );

    let params = Params::practical(8, 0.1, 3);
    for k in [3usize, 6, 12] {
        let res = ksupplier::mpc_ksupplier(&metric, &customers, &suppliers, k, &params);
        let worst = res.radius;
        // Average driving distance for context (not the optimized metric).
        let avg: f64 = customers
            .iter()
            .map(|&c| {
                res.suppliers
                    .iter()
                    .map(|&s| metric.dist(PointId(c), s))
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / customers.len() as f64;
        println!(
            "k = {k:>2}: open {:?}",
            res.suppliers.iter().map(|s| s.0).collect::<Vec<_>>()
        );
        println!(
            "        worst-case drive {worst:.1} min, average {avg:.1} min, \
             {} MPC rounds, {} words max/machine",
            res.telemetry.rounds, res.telemetry.max_machine_words
        );
    }
    println!(
        "\nMore warehouses shorten the worst-case drive until the network's local\n\
         structure (minimum store-to-depot hops) becomes the floor."
    );
}
