//! Offline vendored shim for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with a deliberately small measurement loop instead of criterion's full
//! statistical machinery (the registry is unreachable in this build
//! environment).
//!
//! Behaviour:
//! - `--test` (what `cargo bench -- --test` passes) runs every benchmark
//!   body once and skips measurement, keeping CI smoke runs fast.
//! - A positional CLI argument filters benchmarks by substring, like real
//!   criterion.
//! - Each measured benchmark is auto-calibrated to a short wall-clock
//!   budget, then reports the median per-iteration time over
//!   `sample_size` samples.
//! - If `CRITERION_JSON` is set, results are appended to that file as a
//!   JSON array of `{id, median_ns, min_ns, samples}` records.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark within a group: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id with no parameter part.
    pub fn from_name(name: impl Into<String>) -> Self {
        Self { id: name.into() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self::from_name(s)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured body.
pub struct Bencher<'a> {
    mode: Mode,
    /// Filled in by `iter`: per-iteration nanoseconds for each sample.
    samples_ns: &'a mut Vec<f64>,
    sample_size: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// `--test`: run the body once, no timing.
    Smoke,
    Measure,
}

impl Bencher<'_> {
    /// Times `body`, auto-calibrating the iteration count per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if self.mode == Mode::Smoke {
            std_black_box(body());
            return;
        }
        // Calibrate: grow the batch until one batch takes >= 2ms (or a
        // single iteration already exceeds it).
        let mut iters: u64 = 1;
        let budget = Duration::from_millis(2);
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(body());
            }
            let elapsed = t.elapsed();
            if elapsed >= budget || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 2).max(1);
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(body());
            }
            self.samples_ns
                .push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

struct Record {
    id: String,
    median_ns: f64,
    /// Fastest sample — the most noise-robust statistic on shared machines
    /// (any slowdown is external; the code can't run faster than it does).
    min_ns: f64,
    samples: usize,
}

/// Top-level harness state; created by `criterion_main!`.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: Mode::Measure,
            filter: None,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds from CLI args: `--test` selects smoke mode; the first
    /// non-flag argument is a substring filter. Unknown flags are ignored.
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                c.mode = Mode::Smoke;
            } else if !arg.starts_with('-') && c.filter.is_none() {
                c.filter = Some(arg);
            }
        }
        c
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        self.run_one(id.to_string(), 10, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut samples_ns = Vec::new();
        let mut b = Bencher {
            mode: self.mode,
            samples_ns: &mut samples_ns,
            sample_size,
        };
        f(&mut b);
        if self.mode == Mode::Smoke {
            println!("{id}: smoke ok");
            return;
        }
        if samples_ns.is_empty() {
            return;
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        println!("{id:<50} time: {} (min {})", fmt_ns(median), fmt_ns(min));
        self.records.push(Record {
            id,
            median_ns: median,
            min_ns: min,
            samples: samples_ns.len(),
        });
    }

    /// Prints the run summary and, if `CRITERION_JSON` is set, writes the
    /// collected records to that path as a JSON array.
    pub fn final_summary(&self) {
        if self.mode == Mode::Smoke {
            return;
        }
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut f) = std::fs::File::create(&path) {
                let mut out = String::from("[\n");
                for (i, r) in self.records.iter().enumerate() {
                    let comma = if i + 1 == self.records.len() { "" } else { "," };
                    out.push_str(&format!(
                        "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}{}\n",
                        r.id, r.median_ns, r.min_ns, r.samples, comma
                    ));
                }
                out.push_str("]\n");
                let _ = f.write_all(out.as_bytes());
                println!("wrote {} records to {path}", self.records.len());
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `group-name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.c.run_one(full, self.sample_size, f);
        self
    }

    /// Benchmarks `f(b, input)` under `group-name/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.c.run_one(full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (markers only; measurement happens eagerly).
    pub fn finish(self) {}
}

/// Mirror of `criterion::criterion_group!`: defines a function running each
/// target against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.records.len(), 1);
        assert_eq!(c.records[0].id, "g/sum/10");
        assert!(c.records[0].median_ns > 0.0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("zzz".into()),
            ..Criterion::default()
        };
        c.bench_function("abc", |b| b.iter(|| 1 + 1));
        assert!(c.records.is_empty());
    }
}
