//! Offline vendored shim for `parking_lot`, backed by `std::sync`.
//!
//! Only [`Mutex`] is provided — the single parking_lot type this workspace
//! uses. The API difference that matters is that `parking_lot::Mutex::lock`
//! is infallible; this shim preserves that by treating poisoning as fatal
//! (a panicked criterion already aborts the test run that mattered).

use std::sync::MutexGuard;

/// `parking_lot::Mutex`-shaped wrapper over [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Infallible like
    /// parking_lot's; recovers the data from a poisoned lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }
}
