//! Offline vendored shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — the `proptest!` macro with `#![proptest_config(..)]`,
//! `Strategy` with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `Just`, `any`, `prop::collection::vec`, and `prop_assert!`/
//! `prop_assert_eq!` — because the registry is unreachable in this build
//! environment.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs (via the assertion
//!   message) and deterministic case seed but is not minimized.
//! - **Fixed derivation of case seeds** from the test file name and case
//!   index, so failures reproduce exactly across runs.

use std::fmt;
use std::marker::PhantomData;

use rand::{SeedableRng, StandardSample};

/// The RNG driving generation: deterministic per (file, case index).
pub type TestRng = rand_chacha::ChaCha8Rng;

/// A failed (or rejected) test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Real-proptest-compatible alias for [`TestCaseError::fail`].
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt;
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Mirror of proptest's regex string strategies: a `&str` is itself a
/// strategy generating matching `String`s. Supports the subset of regex
/// this workspace's tests use — literal characters, `[a-z0-9_]`-style
/// classes (with ranges), and `{m}`/`{m,n}`/`*`/`+`/`?` quantifiers —
/// and panics on anything else.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        use rand::RngExt;
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a literal character.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {self:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in pattern {self:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                assert!(
                    !"()|\\.^$".contains(chars[i]),
                    "unsupported regex construct {:?} in pattern {self:?}",
                    chars[i]
                );
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {self:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad quantifier"),
                        n.trim().parse::<usize>().expect("bad quantifier"),
                    ),
                    None => {
                        let m = body.trim().parse::<usize>().expect("bad quantifier");
                        (m, m)
                    }
                }
            } else if i < chars.len() && "*+?".contains(chars[i]) {
                let q = chars[i];
                i += 1;
                match q {
                    '*' => (0, 8),
                    '+' => (1, 8),
                    _ => (0, 1),
                }
            } else {
                (1, 1)
            };
            assert!(!class.is_empty(), "empty class in pattern {self:?}");
            let count = rng.random_range(lo..=hi);
            for _ in 0..count {
                out.push(class[rng.random_range(0..class.len())]);
            }
        }
        out
    }
}

/// Strategy for a value uniform over `T`'s full domain (see
/// [`rand::StandardSample`]).
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: StandardSample> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

/// Mirror of `proptest::prelude::any`.
pub fn any<T: StandardSample>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            use rand::RngExt;
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives `body` over `config.cases` deterministic cases; panics on the
/// first failure, reporting the case index (the seed derivation is fixed,
/// so a reported failure reproduces exactly).
pub fn run_cases<F>(config: ProptestConfig, file: &str, test: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(file) ^ fnv1a(test);
    for case in 0..config.cases {
        let mut rng =
            TestRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest {test} failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Mirror of the `proptest!` macro: wraps each `fn name(pat in strategy, ..)
/// { body }` item in a case-running loop. The body runs inside a closure
/// returning `Result<(), TestCaseError>`, so `prop_assert!`-style early
/// returns and `return Ok(())` work as in real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(unreachable_code, clippy::redundant_closure_call)]
        fn $name() {
            $crate::run_cases($cfg, file!(), stringify!($name), |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Mirror of `proptest::prop_assert!`: on failure returns a
/// [`TestCaseError`] from the enclosing case closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            __a,
            __b,
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __a,
            __b,
            format!($($fmt)+)
        );
    }};
}

/// Mirror of `proptest::prelude` — the single import the tests use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u64..=6), v in prop::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(a < 10);
            prop_assert!(b == 5 || b == 6, "b was {b}");
            prop_assert!((2..5).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn map_and_flat_map(n in (1usize..4).prop_flat_map(|k| (Just(k), 0usize..k)).prop_map(|(k, i)| k + i)) {
            prop_assert!(n >= 1);
            if n == 0 { return Ok(()); }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        crate::run_cases(
            ProptestConfig::with_cases(3),
            file!(),
            "failures_panic",
            |_rng| Err(TestCaseError::fail("boom")),
        );
    }
}
