//! Offline vendored shim for the subset of `rand` this workspace uses.
//!
//! The build environment has no network access and an empty crates.io
//! registry, so the real `rand` crate cannot be fetched. This shim keeps the
//! same package name and API surface (`RngCore`, `RngExt`, `SeedableRng`,
//! `random`, `random_range`) so the rest of the workspace compiles unchanged;
//! swapping the real crate back in is a one-line `Cargo.toml` change.
//!
//! Distribution quality notes: integer ranges use a modulo reduction (bias
//! is at most `width / 2^64`, irrelevant at the range widths used here) and
//! floats use the standard 53-bit mantissa construction.

/// A source of random 64-bit words. Mirror of `rand_core::RngCore`, reduced
/// to the one primitive everything else derives from.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed. Mirror of `rand::SeedableRng`,
/// reduced to the `seed_from_u64` entry point the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a value uniformly distributed over a type's full domain
/// (integers: all bit patterns; `f64`: the unit interval `[0, 1)`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` via the 53-bit
/// mantissa construction.
#[inline]
pub fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// A type with a uniform-over-an-interval sampler. Mirror of
/// `rand::distr::uniform::SampleUniform`, reduced to one entry point.
pub trait SampleUniform: Sized {
    /// A value uniform over `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Callers guarantee the interval is non-empty.
    fn sample_interval(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                // Width fits u128 for every integer type up to 64 bits,
                // signed included. Modulo bias is at most width / 2^64.
                let width = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                (lo as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
        if inclusive {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_991.0);
            lo + unit * (hi - lo)
        } else {
            let v = lo + unit_f64(rng.next_u64()) * (hi - lo);
            // Guard against the multiply rounding up to the excluded endpoint.
            if v < hi {
                v
            } else {
                lo
            }
        }
    }
}

/// A range that knows how to sample itself. Mirror of
/// `rand::distr::uniform::SampleRange`. The blanket impls over
/// [`SampleUniform`] (rather than per-type impls) matter for inference:
/// they let `rng.random_range(0..k)` unify the literal's type with the use
/// site (e.g. a `usize` index), exactly like the real crate.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`; panics on an empty range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_interval(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_interval(lo, hi, true, rng)
    }
}

/// Convenience sampling methods on any [`RngCore`]. Mirror of `rand::Rng`
/// (named `RngExt` in the rand 0.10 line this workspace targets).
pub trait RngExt: RngCore {
    /// A value uniform over `T`'s full domain (`f64`: `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value uniform over `range`; panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a: usize = rng.random_range(3..17);
            assert!((3..17).contains(&a));
            let b: f64 = rng.random_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&b));
            let c: u64 = rng.random_range(9..=9);
            assert_eq!(c, 9);
            let d: f64 = rng.random_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&d));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _: usize = rng.random_range(5..5);
    }

    #[test]
    fn unit_f64_covers_unit_interval() {
        assert_eq!(unit_f64(0), 0.0);
        assert!(unit_f64(u64::MAX) < 1.0);
    }
}
