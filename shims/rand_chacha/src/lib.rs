//! Offline vendored shim for `rand_chacha`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides a type named [`ChaCha8Rng`] with the same construction API
//! (`SeedableRng::seed_from_u64`) backed by xoshiro256** instead of the
//! ChaCha stream cipher. Nothing in the workspace depends on the ChaCha
//! keystream itself — only on a deterministic, statistically solid,
//! seedable generator — so the swap is behaviour-compatible for every
//! consumer here (sampling, partitioning, property tests).

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator with the `rand_chacha::ChaCha8Rng` API.
///
/// Internally xoshiro256** (Blackman–Vigna), state expanded from the seed by
/// splitmix64 as that generator's authors recommend. Passes BigCrush; more
/// than adequate for the sampling and property tests in this workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..8).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..8).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn roughly_uniform_unit_samples() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
