//! Offline vendored shim for `rayon`, with a real thread pool.
//!
//! Exposes the parallel-iterator entry points this workspace calls
//! (`par_iter`, `par_iter_mut`, `par_chunks`, `into_par_iter` and the
//! combinators chained off them) and executes them on a process-wide
//! `std::thread` worker pool (see [`pool`]). The registry is unreachable
//! in this build environment, so the real crate cannot be fetched; this
//! shim keeps rayon's API shape at the call sites while providing the
//! subset of its execution semantics the workspace needs.
//!
//! ## Execution & chunking contract
//!
//! A terminal operation (`collect`, `sum`, `count`, `reduce`, `for_each`)
//! materializes its base items, splits them into a **fixed** number of
//! contiguous chunks — [`pool::chunk_count`]`(n) = min(n, 64)`, a function
//! of the item count only, never of the thread count — and claims chunks
//! across the calling thread plus up to `threads − 1` pool workers.
//! Per-chunk partial results are combined **in chunk order** on the
//! calling thread.
//!
//! ## Determinism guarantee
//!
//! * Order-preserving operations (`collect`, `neighbors`-style filters)
//!   concatenate chunk outputs in chunk order: results are identical to
//!   the sequential pass at every thread count, unconditionally.
//! * Reductions (`reduce`, `sum`, `count`) fold each chunk sequentially
//!   and then fold the partials in chunk order. Because the split is
//!   thread-count-independent, results are bit-for-bit identical at every
//!   thread count ≥ 2; they also equal the single-threaded fold whenever
//!   the operator is associative with a true identity — which rayon itself
//!   requires, and which every reduction in this workspace satisfies
//!   (integer sums, max/min selections).
//! * An effective thread count of **1** (`KCENTER_THREADS=1`, or
//!   [`with_threads`]`(1, ..)`) bypasses the pool and chunking entirely
//!   and reproduces the pre-pool sequential shim exactly.
//!
//! Pool size comes from `std::thread::available_parallelism()`, overridden
//! process-wide by `KCENTER_THREADS` and per-thread by [`with_threads`].
//! Nested parallel ops (a `par_iter` inside a chunk body) are safe: the
//! submitting thread always drains its own op, so progress never depends
//! on a free worker. Panics in any chunk propagate to the submitting
//! thread after the op finishes.
//!
//! Swapping the real rayon back in remains a `Cargo.toml` change; the only
//! shim-specific extensions call sites use are [`with_threads`] /
//! [`current_num_threads`] (real rayon: `ThreadPoolBuilder`) and the
//! `pool::chunk_*` helpers, none of which appear in the library crates'
//! public APIs.

pub mod pool;

pub use pool::{current_num_threads, default_threads, with_threads};

use std::sync::Mutex;

/// A fused per-item pipeline: maps a base item (plus its base index, for
/// `enumerate`) to `Some(output)` or `None` (filtered out). Composed
/// statically by the combinators so chunk bodies run one closure per item.
pub trait Pipe<T>: Sync {
    /// The pipeline's output item type.
    type Out: Send;
    /// Applies the pipeline to `item`, the `index`-th item of the base.
    fn apply(&self, index: usize, item: T) -> Option<Self::Out>;
}

/// The empty pipeline: yields base items unchanged.
pub struct Identity;

impl<T: Send> Pipe<T> for Identity {
    type Out = T;
    #[inline]
    fn apply(&self, _index: usize, item: T) -> Option<T> {
        Some(item)
    }
}

/// Pipeline stage for [`ParIter::map`].
pub struct MapPipe<P, F> {
    prev: P,
    f: F,
}

impl<T, P: Pipe<T>, U: Send, F: Fn(P::Out) -> U + Sync> Pipe<T> for MapPipe<P, F> {
    type Out = U;
    #[inline]
    fn apply(&self, index: usize, item: T) -> Option<U> {
        self.prev.apply(index, item).map(&self.f)
    }
}

/// Pipeline stage for [`ParIter::filter`].
pub struct FilterPipe<P, F> {
    prev: P,
    f: F,
}

impl<T, P: Pipe<T>, F: Fn(&P::Out) -> bool + Sync> Pipe<T> for FilterPipe<P, F> {
    type Out = P::Out;
    #[inline]
    fn apply(&self, index: usize, item: T) -> Option<P::Out> {
        self.prev.apply(index, item).filter(|out| (self.f)(out))
    }
}

/// Pipeline stage for [`ParIter::enumerate`]. Indices are **base**
/// positions, so like real rayon (where `enumerate` needs an indexed
/// iterator) it belongs before any `filter`.
pub struct EnumeratePipe<P> {
    prev: P,
}

impl<T, P: Pipe<T>> Pipe<T> for EnumeratePipe<P> {
    type Out = (usize, P::Out);
    #[inline]
    fn apply(&self, index: usize, item: T) -> Option<(usize, P::Out)> {
        self.prev.apply(index, item).map(|out| (index, out))
    }
}

/// Splits `items` into [`pool::chunk_count`] chunks, runs
/// `f(base_offset, chunk_items)` for each chunk across the pool, and
/// returns the per-chunk results **in chunk order**. Thread count 1 runs
/// one unsplit chunk inline (the exact pre-pool sequential path).
fn run_split<T: Send, R: Send>(items: Vec<T>, f: &(dyn Fn(usize, Vec<T>) -> R + Sync)) -> Vec<R> {
    if pool::current_num_threads() <= 1 {
        return vec![f(0, items)];
    }
    let n = items.len();
    let k = pool::chunk_count(n);
    // Materialize the fixed split up front; each slot hands its input to
    // whichever thread claims the chunk and collects that chunk's output.
    let mut inputs: Vec<Vec<T>> = (0..k)
        .map(|c| Vec::with_capacity(pool::chunk_range(n, k, c).len()))
        .collect();
    let mut chunk = 0usize;
    for (i, item) in items.into_iter().enumerate() {
        while i >= pool::chunk_range(n, k, chunk).end {
            chunk += 1;
        }
        inputs[chunk].push(item);
    }
    let slots: Vec<Mutex<(Vec<T>, Option<R>)>> = inputs
        .into_iter()
        .map(|input| Mutex::new((input, None)))
        .collect();
    let body = |c: usize| {
        let mut slot = slots[c].lock().unwrap();
        let input = std::mem::take(&mut slot.0);
        let out = f(pool::chunk_range(n, k, c).start, input);
        slot.1 = Some(out);
    };
    pool::run_chunks(k, &body);
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().1.expect("every chunk ran"))
        .collect()
}

/// A parallel iterator: materialized base items plus a fused combinator
/// pipeline, executed chunk-wise on the pool by the terminal operations.
/// (`Send`/`Sync` obligations land on the terminal operations, so building
/// and combining iterators stays bound-free like the real crate.)
pub struct ParIter<T, P> {
    items: Vec<T>,
    pipe: P,
}

impl<T, P: Pipe<T>> ParIter<T, P> {
    /// See rayon's `ParallelIterator::map`.
    pub fn map<U: Send, F: Fn(P::Out) -> U + Sync>(self, f: F) -> ParIter<T, MapPipe<P, F>> {
        ParIter {
            items: self.items,
            pipe: MapPipe { prev: self.pipe, f },
        }
    }

    /// See rayon's `ParallelIterator::filter`.
    pub fn filter<F: Fn(&P::Out) -> bool + Sync>(self, f: F) -> ParIter<T, FilterPipe<P, F>> {
        ParIter {
            items: self.items,
            pipe: FilterPipe { prev: self.pipe, f },
        }
    }

    /// See rayon's `IndexedParallelIterator::enumerate`. Indices are base
    /// positions; chain it before any `filter`, as real rayon's indexed
    /// iterators force.
    pub fn enumerate(self) -> ParIter<T, EnumeratePipe<P>> {
        ParIter {
            items: self.items,
            pipe: EnumeratePipe { prev: self.pipe },
        }
    }
}

impl<T: Send, P: Pipe<T>> ParIter<T, P> {
    /// See [`Iterator::collect`]; chunk outputs concatenate in order, so
    /// the result matches the sequential pass at every thread count.
    pub fn collect<C: FromIterator<P::Out>>(self) -> C {
        let pipe = self.pipe;
        let parts = run_split(self.items, &|off, input: Vec<T>| {
            input
                .into_iter()
                .enumerate()
                .filter_map(|(j, item)| pipe.apply(off + j, item))
                .collect::<Vec<P::Out>>()
        });
        parts.into_iter().flatten().collect()
    }

    /// See [`Iterator::sum`]; per-chunk sums combine in chunk order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Out> + std::iter::Sum<S> + Send,
    {
        let pipe = self.pipe;
        run_split(self.items, &|off, input: Vec<T>| {
            input
                .into_iter()
                .enumerate()
                .filter_map(|(j, item)| pipe.apply(off + j, item))
                .sum::<S>()
        })
        .into_iter()
        .sum()
    }

    /// See [`Iterator::count`].
    pub fn count(self) -> usize {
        let pipe = self.pipe;
        run_split(self.items, &|off, input: Vec<T>| {
            input
                .into_iter()
                .enumerate()
                .filter_map(|(j, item)| pipe.apply(off + j, item))
                .count()
        })
        .into_iter()
        .sum()
    }

    /// Rayon's two-argument reduce: each chunk folds from `identity()`,
    /// partials fold in chunk order. Identical to the sequential fold for
    /// the associative, identity-respecting operators rayon requires.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Out
    where
        ID: Fn() -> P::Out + Sync,
        OP: Fn(P::Out, P::Out) -> P::Out + Sync,
    {
        let pipe = self.pipe;
        let parts = run_split(self.items, &|off, input: Vec<T>| {
            input
                .into_iter()
                .enumerate()
                .filter_map(|(j, item)| pipe.apply(off + j, item))
                .fold(identity(), &op)
        });
        // Each partial already folds from the identity once; combining
        // without re-seeding keeps the single-chunk path exactly equal to
        // the plain sequential fold.
        parts.into_iter().reduce(&op).unwrap_or_else(&identity)
    }

    /// See [`Iterator::for_each`]. `f` runs concurrently across chunks;
    /// like real rayon it must be `Fn + Sync` and order-insensitive.
    pub fn for_each<F: Fn(P::Out) + Sync>(self, f: F) {
        let pipe = self.pipe;
        run_split(self.items, &|off, input: Vec<T>| {
            for (j, item) in input.into_iter().enumerate() {
                if let Some(out) = pipe.apply(off + j, item) {
                    f(out);
                }
            }
        });
    }
}

impl<T> ParIter<T, Identity> {
    /// Pairs with another base-level parallel iterator, like rayon's
    /// `IndexedParallelIterator::zip` (which likewise only exists before
    /// un-indexing combinators such as `filter`).
    pub fn zip<U>(self, other: ParIter<U, Identity>) -> ParIter<(T, U), Identity> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
            pipe: Identity,
        }
    }
}

/// `par_iter`/`par_iter_mut`/`par_chunks` on slices (and anything
/// derefing to one).
pub trait ParSliceExt<T> {
    /// Stand-in for `rayon::prelude::IntoParallelRefIterator::par_iter`.
    fn par_iter(&self) -> ParIter<&T, Identity>;

    /// Stand-in for
    /// `rayon::prelude::IntoParallelRefMutIterator::par_iter_mut`.
    fn par_iter_mut(&mut self) -> ParIter<&mut T, Identity>;

    /// Stand-in for `rayon::prelude::ParallelSlice::par_chunks`: the slice
    /// in contiguous pieces of `chunk_size` (last may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T], Identity>;
}

impl<T> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<&T, Identity> {
        ParIter {
            items: self.iter().collect(),
            pipe: Identity,
        }
    }

    fn par_iter_mut(&mut self) -> ParIter<&mut T, Identity> {
        ParIter {
            items: self.iter_mut().collect(),
            pipe: Identity,
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T], Identity> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
            pipe: Identity,
        }
    }
}

/// `into_par_iter` on any owned iterable (ranges, vectors, ...).
pub trait IntoParIterExt: IntoIterator + Sized {
    /// Stand-in for
    /// `rayon::prelude::IntoParallelIterator::into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::Item, Identity> {
        ParIter {
            items: self.into_iter().collect(),
            pipe: Identity,
        }
    }
}

impl<T: IntoIterator> IntoParIterExt for T {}

/// Mirror of `rayon::prelude` — the import path used at every call site.
pub mod prelude {
    pub use crate::{IntoParIterExt, ParIter, ParSliceExt};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{pool, with_threads};

    #[test]
    fn map_collect_matches_sequential() {
        let v = [1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn zip_enumerate_reduce() {
        let a = [1.0f64, 5.0, 3.0];
        let mut b = [10.0f64, 0.0, 10.0];
        let best = a
            .par_iter()
            .zip(b.par_iter_mut())
            .enumerate()
            .map(|(i, (&x, slot))| {
                *slot = slot.min(x);
                (x, i)
            })
            .reduce(
                || (f64::NEG_INFINITY, usize::MAX),
                |acc, cur| if cur.0 > acc.0 { cur } else { acc },
            );
        assert_eq!(best, (5.0, 1));
        assert_eq!(b, [1.0, 0.0, 3.0]);
    }

    #[test]
    fn range_into_par_iter() {
        let total: usize = (0..10usize).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(total, 90);
    }

    #[test]
    fn filter_preserves_order() {
        let v: Vec<u32> = (0..1000).collect();
        let odd: Vec<u32> = with_threads(8, || {
            v.par_iter().map(|&x| x).filter(|x| x % 2 == 1).collect()
        });
        let want: Vec<u32> = (0..1000).filter(|x| x % 2 == 1).collect();
        assert_eq!(odd, want);
    }

    #[test]
    fn par_chunks_covers_slice_in_order() {
        let v: Vec<u32> = (0..103).collect();
        let sizes: Vec<usize> = with_threads(4, || v.par_chunks(10).map(|c| c.len()).collect());
        assert_eq!(sizes.len(), 11);
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert_eq!(sizes[10], 3);
        let flat: Vec<u32> = with_threads(4, || {
            v.par_chunks(10).map(|c| c.to_vec()).collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect();
        assert_eq!(flat, v);
    }

    #[test]
    fn empty_input_all_terminals() {
        let v: Vec<u64> = Vec::new();
        for t in [1usize, 2, 8] {
            with_threads(t, || {
                let c: Vec<u64> = v.par_iter().map(|&x| x).collect();
                assert!(c.is_empty());
                assert_eq!(v.par_iter().map(|&x| x).sum::<u64>(), 0);
                assert_eq!(v.par_iter().map(|&x| x).count(), 0);
                assert_eq!(v.par_iter().map(|&x| x).reduce(|| 7u64, |a, b| a + b), 7);
                v.par_iter().for_each(|_| panic!("no items, no calls"));
            });
        }
    }

    #[test]
    fn more_threads_than_items() {
        // 3 items, 8-thread override: chunk count clamps to the item
        // count and every item is processed exactly once.
        let out: Vec<u32> = with_threads(8, || [5u32, 6, 7].par_iter().map(|&x| x * 10).collect());
        assert_eq!(out, vec![50, 60, 70]);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let v: Vec<u64> = (0..10_000).collect();
        let base: Vec<u64> = with_threads(1, || v.par_iter().map(|&x| x * x % 9973).collect());
        let base_sum: u64 = with_threads(1, || v.par_iter().map(|&x| x * x % 9973).sum());
        let base_max = with_threads(1, || {
            v.par_iter()
                .enumerate()
                .map(|(i, &x)| (x * 37 % 1009, i))
                .reduce(|| (0, usize::MAX), |a, c| if c.0 > a.0 { c } else { a })
        });
        for t in [2usize, 3, 8] {
            with_threads(t, || {
                let got: Vec<u64> = v.par_iter().map(|&x| x * x % 9973).collect();
                assert_eq!(got, base, "collect at {t} threads");
                let sum: u64 = v.par_iter().map(|&x| x * x % 9973).sum();
                assert_eq!(sum, base_sum, "sum at {t} threads");
                let max = v
                    .par_iter()
                    .enumerate()
                    .map(|(i, &x)| (x * 37 % 1009, i))
                    .reduce(|| (0, usize::MAX), |a, c| if c.0 > a.0 { c } else { a });
                assert_eq!(max, base_max, "reduce at {t} threads");
            });
        }
    }

    #[test]
    fn nested_par_iter_does_not_deadlock() {
        // A parallel op whose chunk bodies themselves submit parallel ops:
        // the submitting thread drains its own cursor, so this terminates
        // even when every worker is busy with the outer op.
        let total: u64 = with_threads(4, || {
            (0u64..16)
                .into_par_iter()
                .map(|i| {
                    with_threads(2, || {
                        (0u64..100).into_par_iter().map(|j| i * j).sum::<u64>()
                    })
                })
                .sum()
        });
        let want: u64 = (0u64..16)
            .map(|i| (0u64..100).map(|j| i * j).sum::<u64>())
            .sum();
        assert_eq!(total, want);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                (0u32..1000).into_par_iter().for_each(|i| {
                    if i == 371 {
                        panic!("chunk panic 371");
                    }
                });
            })
        });
        let payload = caught.expect_err("panic must propagate to the submitter");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("chunk panic 371"), "got: {msg}");
        // The pool must stay usable after a panicked op.
        let sum: u32 = with_threads(4, || (0u32..100).into_par_iter().map(|x| x).sum());
        assert_eq!(sum, 4950);
    }

    #[test]
    fn chunk_split_is_thread_count_independent() {
        assert_eq!(pool::chunk_count(0), 1);
        assert_eq!(pool::chunk_count(3), 3);
        assert_eq!(pool::chunk_count(64), 64);
        assert_eq!(pool::chunk_count(1_000_000), 64);
        // Ranges tile [0, n) exactly.
        for n in [1usize, 7, 64, 65, 100_000] {
            let k = pool::chunk_count(n);
            let mut next = 0;
            for c in 0..k {
                let r = pool::chunk_range(n, k, c);
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n);
        }
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let outer = super::current_num_threads();
        with_threads(3, || assert_eq!(super::current_num_threads(), 3));
        assert_eq!(super::current_num_threads(), outer);
    }
}
