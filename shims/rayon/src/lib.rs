//! Offline vendored shim for `rayon`.
//!
//! Exposes the parallel-iterator entry points this workspace calls
//! (`par_iter`, `par_iter_mut`, `into_par_iter` and the combinators chained
//! off them) but executes them **sequentially** on the calling thread. The
//! registry is unreachable in this build environment, so the real work-
//! stealing pool cannot be fetched; sequential execution is semantically
//! identical for every use here (all reductions in the workspace are
//! deterministic and order-insensitive by construction — see
//! `crates/core/src/gmm.rs` for the explicitly order-pinned reduction).
//!
//! Swapping the real rayon back in is a one-line `Cargo.toml` change; no
//! source edits needed.

/// Sequential stand-in for rayon's parallel iterators. Wraps any
/// [`Iterator`] and re-exposes the combinator subset the workspace chains.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// See [`Iterator::map`].
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// See [`Iterator::enumerate`].
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// See [`Iterator::filter`].
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Pairs with another parallel iterator, like rayon's
    /// `IndexedParallelIterator::zip`.
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// See [`Iterator::collect`].
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// See [`Iterator::sum`].
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// See [`Iterator::count`].
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Rayon's two-argument reduce: folds with `op` from the identity
    /// produced by `identity`. Sequential fold gives the same result for
    /// the associative, identity-respecting operators rayon requires.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// See [`Iterator::for_each`].
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }
}

/// `par_iter`/`par_iter_mut` on slices (and anything derefing to one).
pub trait ParSliceExt<T> {
    /// Sequential stand-in for `rayon::prelude::IntoParallelRefIterator::par_iter`.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;

    /// Sequential stand-in for
    /// `rayon::prelude::IntoParallelRefMutIterator::par_iter_mut`.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
}

impl<T> ParSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
}

/// `into_par_iter` on any owned iterable (ranges, vectors, ...).
pub trait IntoParIterExt: IntoIterator + Sized {
    /// Sequential stand-in for
    /// `rayon::prelude::IntoParallelIterator::into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<T: IntoIterator> IntoParIterExt for T {}

/// Mirror of `rayon::prelude` — the import path used at every call site.
pub mod prelude {
    pub use crate::{IntoParIterExt, ParIter, ParSliceExt};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let v = [1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn zip_enumerate_reduce() {
        let a = [1.0f64, 5.0, 3.0];
        let mut b = [10.0f64, 0.0, 10.0];
        let best = a
            .par_iter()
            .zip(b.par_iter_mut())
            .enumerate()
            .map(|(i, (&x, slot))| {
                *slot = slot.min(x);
                (x, i)
            })
            .reduce(
                || (f64::NEG_INFINITY, usize::MAX),
                |acc, cur| if cur.0 > acc.0 { cur } else { acc },
            );
        assert_eq!(best, (5.0, 1));
        assert_eq!(b, [1.0, 0.0, 3.0]);
    }

    #[test]
    fn range_into_par_iter() {
        let total: usize = (0..10usize).into_par_iter().map(|x| x * 2).sum();
        assert_eq!(total, 90);
    }
}
