//! The chunk-claiming worker pool behind the parallel iterators.
//!
//! One global pool serves the whole process. A parallel operation splits
//! its work into a fixed number of chunks (see [`chunk_count`] — the split
//! depends only on the item count, never on the thread count), publishes a
//! single *op* holding an atomic chunk cursor, and then **participates**:
//! the submitting thread claims and runs chunks exactly like the workers
//! do. Idle workers steal chunks from published ops via the same cursor.
//! This self-scheduling scheme gives work-stealing's load-balancing
//! behaviour with a single atomic per claim, and it makes nested
//! parallelism deadlock-free by construction — an op's submitter never
//! waits on work that only a blocked thread could run, because the
//! submitter itself drains the cursor before waiting for stragglers.
//!
//! Pool size defaults to [`std::thread::available_parallelism`], overridden
//! by the `KCENTER_THREADS` environment variable (read once, at first
//! use), and per-thread by [`with_threads`]. Worker threads are spawned
//! lazily, on the first op that could use them, and then persist for the
//! process lifetime (they park on a condvar while idle).
//!
//! Panics inside a chunk are caught on the executing thread, the first
//! payload is stashed on the op, and the submitting thread re-raises it
//! after every chunk has finished — so a panicking worker never leaves the
//! op's other chunks orphaned and the pool stays usable afterwards.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool concurrency (threads per op, workers overall).
pub const MAX_THREADS: usize = 64;

/// Fixed upper bound on chunks per op. 64 chunks keep claim overhead
/// negligible while giving an 8–16 thread pool enough slack to balance
/// uneven chunk costs.
pub const MAX_CHUNKS: usize = 64;

/// Number of chunks an op over `n_items` items splits into: `min(n, 64)`
/// (at least 1, so empty inputs still run their — empty — chunk body once
/// where callers expect it). A function of the item count **only**: the
/// same input splits identically at every thread count ≥ 2, which is what
/// makes chunked reductions reproducible across pool sizes.
pub fn chunk_count(n_items: usize) -> usize {
    n_items.clamp(1, MAX_CHUNKS)
}

/// Half-open range of item indices belonging to chunk `c` of `n_chunks`
/// over `n_items` items: the standard even split `[c·n/k, (c+1)·n/k)`.
pub fn chunk_range(n_items: usize, n_chunks: usize, c: usize) -> Range<usize> {
    (c * n_items / n_chunks)..((c + 1) * n_items / n_chunks)
}

fn env_threads() -> Option<usize> {
    std::env::var("KCENTER_THREADS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// The process-default thread count: `KCENTER_THREADS` if set (≥ 1), else
/// the machine's available parallelism; capped at [`MAX_THREADS`]. Read
/// once and cached.
pub fn default_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        env_threads()
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(MAX_THREADS)
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The thread count parallel ops submitted by the current thread will use:
/// the innermost [`with_threads`] override, else [`default_threads`].
pub fn current_num_threads() -> usize {
    OVERRIDE.with(|c| c.get()).unwrap_or_else(default_threads)
}

/// Runs `f` with parallel ops submitted by this thread using exactly `n`
/// threads (1 = strictly sequential, bitwise-identical to the pre-pool
/// shim). The override is thread-local and restored on exit, panic
/// included. Shim extension (real rayon configures pools via
/// `ThreadPoolBuilder`); used by the determinism tests and the
/// 1-vs-N-thread benchmarks.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = OVERRIDE.with(|c| c.replace(Some(n.min(MAX_THREADS))));
    let _restore = Restore(prev);
    f()
}

/// One published parallel operation: a chunk body plus claim/completion
/// state. The `'static` on `job` is a lie told by [`run_chunks`] — the
/// submitting thread guarantees the borrow outlives every dereference by
/// blocking until `remaining` hits zero before returning.
struct Op {
    job: &'static (dyn Fn(usize) + Sync),
    n_chunks: usize,
    /// Next chunk index to claim; claims past `n_chunks` mean "exhausted".
    next: AtomicUsize,
    /// Worker slots still available (the submitter is not counted). Caps
    /// how many pool workers may join, so [`with_threads`] produces real
    /// 2-thread runs even on a wide pool.
    slots: AtomicIsize,
    /// Chunks not yet finished; guarded so `done` can be signalled exactly
    /// when the last chunk completes.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload raised by any chunk.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Op>>>,
    ready: Condvar,
    /// Workers spawned so far (monotonic; workers never exit).
    workers: Mutex<usize>,
}

fn shared() -> &'static Arc<Shared> {
    static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();
    SHARED.get_or_init(|| {
        Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            workers: Mutex::new(0),
        })
    })
}

fn ensure_workers(shared: &Arc<Shared>, want: usize) {
    let want = want.min(MAX_THREADS - 1);
    let mut count = shared.workers.lock().unwrap();
    while *count < want {
        let s = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("kcenter-pool-{}", *count))
            .spawn(move || worker_loop(s));
        if spawned.is_err() {
            // Degrade gracefully: the submitter always completes its own
            // ops, workers just stop growing.
            break;
        }
        *count += 1;
    }
}

/// Claims and runs chunks of `op` until its cursor is exhausted. Returns
/// only when no unclaimed chunk remains (claimed chunks may still be
/// running on other threads).
fn run_op_chunks(op: &Op) {
    loop {
        let c = op.next.fetch_add(1, Ordering::Relaxed);
        if c >= op.n_chunks {
            return;
        }
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| (op.job)(c))) {
            let mut slot = op.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut rem = op.remaining.lock().unwrap();
        *rem -= 1;
        if *rem == 0 {
            op.done.notify_all();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let op = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                let found = q.iter().find(|o| {
                    o.next.load(Ordering::Relaxed) < o.n_chunks
                        && o.slots.load(Ordering::Relaxed) > 0
                });
                if let Some(op) = found {
                    break Arc::clone(op);
                }
                q = shared.ready.wait(q).unwrap();
            }
        };
        // Acquire a worker slot; raced-out acquisitions are handed back.
        if op.slots.fetch_sub(1, Ordering::AcqRel) <= 0 {
            op.slots.fetch_add(1, Ordering::AcqRel);
            continue;
        }
        run_op_chunks(&op);
        op.slots.fetch_add(1, Ordering::AcqRel);
        // The op's cursor is exhausted; drop it from the queue if the
        // submitter has not already done so.
        let mut q = shared.queue.lock().unwrap();
        if let Some(pos) = q.iter().position(|o| Arc::ptr_eq(o, &op)) {
            q.remove(pos);
        }
    }
}

/// Runs `body(c)` for every chunk `c` in `0..n_chunks`, spreading chunks
/// over up to [`current_num_threads`] threads (the calling thread plus
/// pool workers). Blocks until every chunk has finished; re-raises the
/// first chunk panic. With an effective thread count of 1 the chunks run
/// inline, in order, with no pool machinery at all.
pub fn run_chunks(n_chunks: usize, body: &(dyn Fn(usize) + Sync)) {
    if n_chunks == 0 {
        return;
    }
    let threads = current_num_threads().min(n_chunks);
    if threads <= 1 {
        for c in 0..n_chunks {
            body(c);
        }
        return;
    }

    let shared = shared();
    ensure_workers(shared, threads - 1);

    // SAFETY: `job` escapes to worker threads with a forged 'static
    // lifetime. Every dereference happens while executing a claimed chunk,
    // all chunks are accounted for by `remaining`, and this function does
    // not return until `remaining == 0` — so the borrow outlives all uses.
    let job: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
    let op = Arc::new(Op {
        job,
        n_chunks,
        next: AtomicUsize::new(0),
        slots: AtomicIsize::new((threads - 1) as isize),
        remaining: Mutex::new(n_chunks),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    {
        shared.queue.lock().unwrap().push_back(Arc::clone(&op));
    }
    shared.ready.notify_all();

    // Participate: the submitter drains the cursor alongside the workers.
    run_op_chunks(&op);

    // Wait for chunks claimed by workers to finish.
    {
        let mut rem = op.remaining.lock().unwrap();
        while *rem > 0 {
            rem = op.done.wait(rem).unwrap();
        }
    }
    {
        let mut q = shared.queue.lock().unwrap();
        if let Some(pos) = q.iter().position(|o| Arc::ptr_eq(o, &op)) {
            q.remove(pos);
        }
    }
    let payload = op.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        panic::resume_unwind(payload);
    }
}
