//! Offline vendored shim for `serde`.
//!
//! Provides marker traits with the canonical names plus (behind the usual
//! `derive` feature) no-op derive macros, so `#[derive(Serialize,
//! Deserialize)]` and `use serde::Serialize` keep compiling while the
//! registry is unreachable. The workspace serializes exclusively through
//! hand-rolled CSV/JSON writers, so nothing consumes these traits' methods —
//! they carry none.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
