//! Offline vendored shim for `serde` — now a **real compact byte codec**.
//!
//! Until the transport refactor (ISSUE 10) these were empty marker traits:
//! nothing in the workspace consumed serialized bytes, so `#[derive]` sites
//! were decorative. The pluggable `Cluster` transport changed that — the
//! `loopback` and `process` backends move every collective's payload
//! through length-prefixed little-endian frames, so `Serialize` /
//! `Deserialize` now carry a working wire codec:
//!
//! * [`Serialize::to_bytes`] appends a value's canonical little-endian
//!   encoding to a byte buffer;
//! * [`Deserialize::from_bytes`] reads one value back, advancing the input
//!   slice, and fails loudly (never panics) on truncated or malformed
//!   input.
//!
//! The encoding is deliberately boring and bijective per type: fixed-width
//! integers and floats as little-endian bytes (`f64` round-trips bit
//! patterns, so NaN payloads and signed zeros survive), `usize` widened to
//! 8 bytes for cross-process stability, sequences as a `u64` length prefix
//! followed by the elements, `Option` as a 1-byte tag, tuples and structs
//! as the concatenation of their fields. There is no self-description and
//! no varint cleverness — decode must know the type, exactly like real
//! serde with a compact binary format (bincode's fixint encoding is the
//! spiritual ancestor).
//!
//! The `derive` feature expands `#[derive(Serialize, Deserialize)]` to
//! field-wise codec impls (see `serde_derive`), so existing call sites
//! keep compiling unchanged — but now produce working codecs.

/// Decoding failure: truncated input, a malformed tag, or trailing garbage
/// where a caller demanded exhaustion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value did: `needed` more bytes than `had`.
    Truncated { needed: usize, had: usize },
    /// A tag byte (e.g. an `Option` discriminant) held an invalid value.
    BadTag { context: &'static str, tag: u8 },
    /// A length prefix exceeded a sanity bound or the remaining input.
    BadLength { context: &'static str, len: u64 },
    /// Bytes were not valid UTF-8 where a `String` was expected.
    BadUtf8,
    /// A caller demanded the input be fully consumed and it was not.
    TrailingBytes { remaining: usize },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated { needed, had } => {
                write!(f, "truncated input: needed {needed} bytes, had {had}")
            }
            Self::BadTag { context, tag } => write!(f, "bad tag {tag:#04x} decoding {context}"),
            Self::BadLength { context, len } => {
                write!(f, "implausible length {len} decoding {context}")
            }
            Self::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            Self::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialization into the compact little-endian wire encoding.
pub trait Serialize {
    /// Appends this value's encoding to `out`.
    fn to_bytes(&self, out: &mut Vec<u8>);

    /// Convenience: the encoding as a fresh vector.
    fn to_byte_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.to_bytes(&mut out);
        out
    }
}

/// Deserialization from the compact little-endian wire encoding.
///
/// The lifetime parameter mirrors real serde's `Deserialize<'de>` so
/// existing bounds and `#[derive]` sites compile unchanged; this codec
/// never borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Reads one value from the front of `input`, advancing it past the
    /// consumed bytes.
    fn from_bytes(input: &mut &[u8]) -> Result<Self, DecodeError>;

    /// Decodes a value that must occupy `input` exactly.
    fn from_bytes_exact(mut input: &[u8]) -> Result<Self, DecodeError> {
        let v = Self::from_bytes(&mut input)?;
        if input.is_empty() {
            Ok(v)
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: input.len(),
            })
        }
    }
}

/// Takes `n` bytes off the front of `input` or reports truncation.
#[inline]
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if input.len() < n {
        return Err(DecodeError::Truncated {
            needed: n,
            had: input.len(),
        });
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! impl_le_codec {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            #[inline]
            fn to_bytes(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl<'de> Deserialize<'de> for $t {
            #[inline]
            fn from_bytes(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let raw = take(input, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(raw.try_into().expect("sized take")))
            }
        }
    )*};
}

impl_le_codec!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

// `usize`/`isize` travel as 8 bytes so encodings are identical across
// hosts and between coordinator and worker processes.
impl Serialize for usize {
    #[inline]
    fn to_bytes(&self, out: &mut Vec<u8>) {
        (*self as u64).to_bytes(out);
    }
}

impl<'de> Deserialize<'de> for usize {
    #[inline]
    fn from_bytes(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = u64::from_bytes(input)?;
        usize::try_from(v).map_err(|_| DecodeError::BadLength {
            context: "usize",
            len: v,
        })
    }
}

impl Serialize for isize {
    #[inline]
    fn to_bytes(&self, out: &mut Vec<u8>) {
        (*self as i64).to_bytes(out);
    }
}

impl<'de> Deserialize<'de> for isize {
    #[inline]
    fn from_bytes(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = i64::from_bytes(input)?;
        isize::try_from(v).map_err(|_| DecodeError::BadLength {
            context: "isize",
            len: v as u64,
        })
    }
}

impl Serialize for bool {
    #[inline]
    fn to_bytes(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl<'de> Deserialize<'de> for bool {
    #[inline]
    fn from_bytes(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::from_bytes(input)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag {
                context: "bool",
                tag,
            }),
        }
    }
}

/// Reads a `u64` length prefix and sanity-checks it against the remaining
/// input, assuming each element costs at least `min_elem_bytes` — rejects
/// hostile prefixes before any allocation.
#[inline]
fn read_len(
    input: &mut &[u8],
    context: &'static str,
    min_elem_bytes: usize,
) -> Result<usize, DecodeError> {
    let len = u64::from_bytes(input)?;
    let cap = (input.len() / min_elem_bytes.max(1)) as u64;
    if len > cap {
        return Err(DecodeError::BadLength { context, len });
    }
    Ok(len as usize)
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_bytes(&self, out: &mut Vec<u8>) {
        (self.len() as u64).to_bytes(out);
        for item in self {
            item.to_bytes(out);
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_bytes(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_len(input, "Vec", 1)?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(T::from_bytes(input)?);
        }
        Ok(v)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_bytes(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.to_bytes(out);
            }
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_bytes(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::from_bytes(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::from_bytes(input)?)),
            tag => Err(DecodeError::BadTag {
                context: "Option",
                tag,
            }),
        }
    }
}

impl Serialize for String {
    fn to_bytes(&self, out: &mut Vec<u8>) {
        (self.len() as u64).to_bytes(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_bytes(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_len(input, "String", 1)?;
        let raw = take(input, len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

impl Serialize for &str {
    fn to_bytes(&self, out: &mut Vec<u8>) {
        (self.len() as u64).to_bytes(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Serialize for () {
    fn to_bytes(&self, _out: &mut Vec<u8>) {}
}

impl<'de> Deserialize<'de> for () {
    fn from_bytes(_input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(())
    }
}

macro_rules! impl_tuple_codec {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_bytes(&self, out: &mut Vec<u8>) {
                $(self.$idx.to_bytes(out);)+
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_bytes(input: &mut &[u8]) -> Result<Self, DecodeError> {
                Ok(($($name::from_bytes(input)?,)+))
            }
        }
    )*};
}

impl_tuple_codec!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_bytes(&self, out: &mut Vec<u8>) {
        for item in self {
            item.to_bytes(out);
        }
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T>(v: T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de> + std::fmt::Debug,
    {
        T::from_bytes_exact(&v.to_byte_vec()).expect("roundtrip")
    }

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(roundtrip(0xDEAD_BEEFu32), 0xDEAD_BEEF);
        assert_eq!(roundtrip(-5i64), -5);
        assert_eq!(roundtrip(usize::MAX), usize::MAX);
        assert!(roundtrip(true));
        assert_eq!(roundtrip(3.25f64).to_bits(), 3.25f64.to_bits());
        // NaN payloads and signed zeros survive bit-exactly.
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        assert_eq!(roundtrip(nan).to_bits(), nan.to_bits());
        assert_eq!(roundtrip(-0.0f64).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn compound_roundtrips() {
        assert_eq!(roundtrip(vec![1u32, 2, 3]), vec![1, 2, 3]);
        assert_eq!(roundtrip(String::from("naïve")), "naïve");
        assert_eq!(roundtrip(Some((7u32, 2.5f64))), Some((7, 2.5)));
        assert_eq!(roundtrip(None::<u64>), None);
        assert_eq!(
            roundtrip(vec![vec![String::from("a")], vec![]]),
            vec![vec![String::from("a")], Vec::new()]
        );
        assert_eq!(roundtrip((1u32, 2u64, 3.0f64)), (1, 2, 3.0));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = 0xAABBCCDDu32.to_byte_vec();
        let mut short = &bytes[..3];
        assert!(matches!(
            u32::from_bytes(&mut short),
            Err(DecodeError::Truncated { needed: 4, had: 3 })
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        let mut bytes = Vec::new();
        u64::MAX.to_bytes(&mut bytes); // claims 2^64-1 elements
        let mut input = bytes.as_slice();
        assert!(matches!(
            Vec::<u64>::from_bytes(&mut input),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn bad_tags_rejected() {
        let mut input: &[u8] = &[2u8];
        assert!(matches!(
            Option::<u8>::from_bytes(&mut input),
            Err(DecodeError::BadTag { .. })
        ));
        let mut input: &[u8] = &[7u8];
        assert!(matches!(
            bool::from_bytes(&mut input),
            Err(DecodeError::BadTag { .. })
        ));
    }

    #[test]
    fn exact_decode_rejects_trailing_bytes() {
        let mut bytes = 1u32.to_byte_vec();
        bytes.push(0);
        assert!(matches!(
            u32::from_bytes_exact(&bytes),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        ));
    }
}
