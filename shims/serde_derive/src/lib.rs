//! Offline vendored shim for `serde_derive` — **real** field-wise codec
//! derives.
//!
//! The transport refactor (ISSUE 10) turned the `serde` shim's marker
//! traits into a working compact byte codec, so the derives can no longer
//! expand to nothing: `#[derive(Serialize, Deserialize)]` now emits
//! `to_bytes`/`from_bytes` impls that encode a struct as the concatenation
//! of its fields in declaration order (named, tuple, and unit structs).
//!
//! The parser is hand-rolled over `proc_macro::TokenStream` (no `syn` /
//! `quote` in this offline environment): it skips attributes and
//! visibility, finds the struct name, and extracts field names (named
//! structs) or the field count (tuple structs). Field *types* are never
//! needed — the generated `from_bytes` calls rely on inference from the
//! struct definition, so `field: serde::Deserialize::from_bytes(input)?`
//! resolves to the right impl.
//!
//! Deliberate limits, enforced with compile errors rather than silent
//! misbehavior: no enums, no generic structs, no unions. Every derived
//! type in this workspace is a plain struct; anything fancier should get a
//! hand-written impl next to the type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the input item turned out to be.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits a field-list token sequence on top-level commas (angle-bracket
/// depth tracked so `Vec<Vec<u32>>` or `HashMap<K, V>` never split).
fn split_fields(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut fields = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if !cur.is_empty() {
                        fields.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        fields.push(cur);
    }
    fields
}

fn parse_struct(input: TokenStream, derive_name: &str) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        Some(TokenTree::Ident(id)) => panic!(
            "#[derive({derive_name})] shim supports only structs, found `{id}`; \
             write the impl by hand for enums/unions"
        ),
        other => panic!("#[derive({derive_name})] shim: expected `struct`, found {other:?}"),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("#[derive({derive_name})] shim: expected struct name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "#[derive({derive_name})] shim supports only non-generic structs; \
                 `{name}` is generic — write the impl by hand"
            );
        }
    }
    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let names = split_fields(&inner)
                .iter()
                .map(|field| {
                    let j = skip_attrs_and_vis(field, 0);
                    match field.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!(
                            "#[derive({derive_name})] shim: expected field name in \
                             `{name}`, found {other:?}"
                        ),
                    }
                })
                .collect();
            Shape::Named(names)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Shape::Tuple(split_fields(&inner).len())
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!(
            "#[derive({derive_name})] shim: expected struct body for `{name}`, found {other:?}"
        ),
    };
    Parsed { name, shape }
}

/// Real `Serialize` derive: fields encode in declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse_struct(input, "Serialize");
    let body = match &p.shape {
        Shape::Named(fields) => fields
            .iter()
            .map(|f| format!("serde::Serialize::to_bytes(&self.{f}, out);"))
            .collect::<String>(),
        Shape::Tuple(n) => (0..*n)
            .map(|i| format!("serde::Serialize::to_bytes(&self.{i}, out);"))
            .collect::<String>(),
        Shape::Unit => String::new(),
    };
    let name = &p.name;
    format!(
        "impl serde::Serialize for {name} {{\n\
           fn to_bytes(&self, out: &mut Vec<u8>) {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Real `Deserialize` derive: fields decode in declaration order; the
/// field types drive inference, so no type tokens are needed here.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse_struct(input, "Deserialize");
    let ctor = match &p.shape {
        Shape::Named(fields) => {
            let inits = fields
                .iter()
                .map(|f| format!("{f}: serde::Deserialize::from_bytes(input)?,"))
                .collect::<String>();
            format!("Self {{ {inits} }}")
        }
        Shape::Tuple(n) => {
            let inits = (0..*n)
                .map(|_| "serde::Deserialize::from_bytes(input)?,".to_string())
                .collect::<String>();
            format!("Self({inits})")
        }
        Shape::Unit => "Self".to_string(),
    };
    let name = &p.name;
    format!(
        "impl<'de> serde::Deserialize<'de> for {name} {{\n\
           fn from_bytes(input: &mut &[u8]) -> Result<Self, serde::DecodeError> {{\n\
             Ok({ctor})\n\
           }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
