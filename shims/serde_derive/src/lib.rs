//! Offline vendored shim for `serde_derive`: the derives expand to nothing.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` decoratively —
//! all on-disk formats (ledger CSV, experiment tables, bench JSON) are
//! hand-rolled, so no code path requires a real serde implementation. The
//! no-op expansion keeps the attribute valid while the registry is
//! unreachable; restoring real serde needs no source change.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
