//! Command-line front end: parse arguments and CSV point files for the
//! `mpc-clustering` binary. Kept dependency-free (no clap) and fully unit
//! tested.

use std::collections::HashMap;

use crate::metric::PointSet;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CliCommand {
    /// Subcommand: `kcenter`, `diversity`, `ksupplier`, or `gen`.
    pub command: String,
    /// `--flag value` pairs.
    pub options: HashMap<String, String>,
}

/// Parse errors with user-facing messages.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` without a value.
    MissingValue(String),
    /// An argument that is neither a subcommand nor a flag.
    Unexpected(String),
    /// A flag value failed to parse.
    BadValue {
        flag: String,
        value: String,
        expected: &'static str,
    },
    /// Required flag absent.
    MissingFlag(String),
    /// CSV parse failure.
    BadCsv { line: usize, message: String },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingCommand => write!(f, "no command given; try `--help`"),
            Self::MissingValue(flag) => write!(f, "flag {flag} needs a value"),
            Self::Unexpected(arg) => write!(f, "unexpected argument {arg:?}"),
            Self::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(f, "{flag} = {value:?} is not a valid {expected}")
            }
            Self::MissingFlag(flag) => write!(f, "required flag {flag} is missing"),
            Self::BadCsv { line, message } => write!(f, "CSV line {line}: {message}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses `args` (without the program name) into a command + options.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliCommand, CliError> {
    let mut it = args.into_iter().peekable();
    let command = it.next().ok_or(CliError::MissingCommand)?;
    if command.starts_with("--") && command != "--help" {
        return Err(CliError::Unexpected(command));
    }
    let mut options = HashMap::new();
    while let Some(arg) = it.next() {
        if let Some(flag) = arg.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| CliError::MissingValue(arg.clone()))?;
            options.insert(flag.to_string(), value);
        } else {
            return Err(CliError::Unexpected(arg));
        }
    }
    Ok(CliCommand { command, options })
}

impl CliCommand {
    /// A required typed flag.
    pub fn required<T: std::str::FromStr>(
        &self,
        flag: &str,
        expected: &'static str,
    ) -> Result<T, CliError> {
        let raw = self
            .options
            .get(flag)
            .ok_or_else(|| CliError::MissingFlag(format!("--{flag}")))?;
        raw.parse().map_err(|_| CliError::BadValue {
            flag: format!("--{flag}"),
            value: raw.clone(),
            expected,
        })
    }

    /// An optional typed flag with default.
    pub fn optional<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, CliError> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| CliError::BadValue {
                flag: format!("--{flag}"),
                value: raw.clone(),
                expected,
            }),
        }
    }
}

/// Parses CSV text (one point per line, comma-separated coordinates,
/// optional header starting with a non-numeric token, blank lines and
/// `#` comments skipped) into a [`PointSet`].
pub fn parse_points_csv(text: &str) -> Result<PointSet, CliError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        let parsed: Result<Vec<f64>, _> = cells.iter().map(|c| c.parse::<f64>()).collect();
        match parsed {
            Ok(coords) => {
                if let Some(first) = rows.first() {
                    if coords.len() != first.len() {
                        return Err(CliError::BadCsv {
                            line: idx + 1,
                            message: format!(
                                "expected {} coordinates, found {}",
                                first.len(),
                                coords.len()
                            ),
                        });
                    }
                }
                rows.push(coords);
            }
            Err(_) if rows.is_empty() => continue, // header line
            Err(e) => {
                return Err(CliError::BadCsv {
                    line: idx + 1,
                    message: e.to_string(),
                });
            }
        }
    }
    if rows.is_empty() {
        return Err(CliError::BadCsv {
            line: 0,
            message: "no data rows".into(),
        });
    }
    Ok(PointSet::from_rows(&rows))
}

/// Renders a whole point set as headerless coordinate CSV (the format
/// [`parse_points_csv`] reads back).
pub fn pointset_to_csv(points: &PointSet) -> String {
    let mut out = String::new();
    for id in points.ids() {
        let row: Vec<String> = points.coords(id).iter().map(|c| c.to_string()).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Renders selected point ids (with coordinates) as CSV.
pub fn points_to_csv(points: &PointSet, ids: &[crate::metric::PointId]) -> String {
    let mut out = String::from("id");
    for d in 0..points.dim() {
        out.push_str(&format!(",x{d}"));
    }
    out.push('\n');
    for &id in ids {
        out.push_str(&id.0.to_string());
        for c in points.coords(id) {
            out.push_str(&format!(",{c}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::PointId;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let cmd = parse_args(args(&["kcenter", "--k", "5", "--input", "pts.csv"])).unwrap();
        assert_eq!(cmd.command, "kcenter");
        assert_eq!(cmd.required::<usize>("k", "integer").unwrap(), 5);
        assert_eq!(cmd.optional::<usize>("m", 8, "integer").unwrap(), 8);
        assert_eq!(cmd.options["input"], "pts.csv");
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert_eq!(parse_args(args(&[])), Err(CliError::MissingCommand));
        assert!(matches!(
            parse_args(args(&["kcenter", "--k"])),
            Err(CliError::MissingValue(_))
        ));
        assert!(matches!(
            parse_args(args(&["kcenter", "stray"])),
            Err(CliError::Unexpected(_))
        ));
        let cmd = parse_args(args(&["kcenter", "--k", "abc"])).unwrap();
        assert!(matches!(
            cmd.required::<usize>("k", "integer"),
            Err(CliError::BadValue { .. })
        ));
        assert!(matches!(
            cmd.required::<String>("input", "path"),
            Err(CliError::MissingFlag(_))
        ));
    }

    #[test]
    fn parses_csv_with_header_and_comments() {
        let csv = "x,y\n# a comment\n1.0, 2.0\n\n3.5,4.5\n";
        let ps = parse_points_csv(csv).unwrap();
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.coords(PointId(1)), &[3.5, 4.5]);
    }

    #[test]
    fn rejects_ragged_and_empty_csv() {
        assert!(matches!(
            parse_points_csv("1.0,2.0\n3.0\n"),
            Err(CliError::BadCsv { line: 2, .. })
        ));
        assert!(matches!(
            parse_points_csv("x,y\n"),
            Err(CliError::BadCsv { .. })
        ));
    }

    #[test]
    fn pointset_csv_round_trips_through_parser() {
        let ps = parse_points_csv("1.5,2.5\n3.0,4.0\n").unwrap();
        let back = parse_points_csv(&pointset_to_csv(&ps)).unwrap();
        assert_eq!(ps, back);
    }

    #[test]
    fn csv_round_trip() {
        let ps = parse_points_csv("1.5,2.5\n3.0,4.0\n").unwrap();
        let out = points_to_csv(&ps, &[PointId(1)]);
        assert_eq!(out, "id,x0,x1\n1,3,4\n");
    }
}
