//! # mpc-clustering
//!
//! Almost optimal massively parallel algorithms for k-center clustering and
//! diversity maximization — a full reproduction of Haqi & Zarrabi-Zadeh,
//! SPAA 2023 (DOI 10.1145/3558481.3591077).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`metric`] — metric spaces, distance oracles, dataset generators;
//! * [`sim`] — the instrumented MPC simulator (machines, rounds, ledger);
//! * [`graph`] — threshold graphs and maximal-independent-set primitives;
//! * [`core`] — the paper's algorithms: GMM, degree approximation,
//!   k-bounded MIS, and the `(2+ε)` k-diversity / `(2+ε)` k-center /
//!   `(3+ε)` k-supplier MPC algorithms;
//! * [`baselines`] — sequential and MPC baselines from prior work plus
//!   exact solvers for small instances;
//! * [`serving`] — the long-lived [`serving::DiversityIndex`]: incremental
//!   per-shard GMM coresets answering k-center / k-diversity queries from
//!   one warm snapshot instead of a batch re-run.
//!
//! ## Quickstart
//!
//! ```
//! use mpc_clustering::metric::{datasets, EuclideanSpace};
//! use mpc_clustering::core::{kcenter, Params};
//!
//! // 1,000 points in 5 Gaussian clusters, distributed over 8 machines.
//! let points = datasets::gaussian_clusters(1_000, 2, 5, 0.02, 42);
//! let space = EuclideanSpace::new(points);
//! let result = kcenter::mpc_kcenter(&space, 5, &Params::practical(8, 0.1, 7));
//! assert_eq!(result.centers.len(), 5);
//! println!(
//!     "radius {:.4} in {} MPC rounds, {} words max per machine",
//!     result.radius,
//!     result.telemetry.rounds,
//!     result.telemetry.max_machine_words
//! );
//! ```
//!
//! See `examples/` for domain scenarios and `DESIGN.md` / `EXPERIMENTS.md`
//! for the system inventory and the experiment index.

pub mod cli;

/// One-stop imports for typical use:
/// `use mpc_clustering::prelude::*;`.
pub mod prelude {
    pub use crate::core::assignment::{assign_to_centers, kcenter_with_assignment};
    pub use crate::core::diversity::{four_approx_diversity, mpc_diversity};
    pub use crate::core::kcenter::mpc_kcenter;
    pub use crate::core::ksupplier::mpc_ksupplier;
    pub use crate::core::{BoundarySearch, Params, PartitionStrategy, Telemetry};
    pub use crate::metric::{
        datasets, EuclideanSpace, HammingSpace, MetricSpace, PointId, PointSet,
    };
    pub use crate::serving::{DiversityIndex, IndexParams};
    pub use crate::sim::{Cluster, CostModel, Partition};
}

pub use mpc_baselines as baselines;
pub use mpc_core as core;
pub use mpc_graph as graph;
pub use mpc_metric as metric;
pub use mpc_serving as serving;
pub use mpc_sim as sim;
