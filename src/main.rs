//! `mpc-clustering` — run the SPAA 2023 MPC clustering algorithms on CSV
//! point files from the command line.
//!
//! ```text
//! mpc-clustering gen       --n 1000 --clusters 8 --out points.csv
//! mpc-clustering kcenter   --input points.csv --k 8 [--m 8] [--epsilon 0.1] [--seed 0] [--out centers.csv]
//! mpc-clustering diversity --input points.csv --k 8 [...]
//! mpc-clustering ksupplier --input points.csv --suppliers-from 800 --k 8 [...]
//! ```

use std::process::ExitCode;

use mpc_clustering::cli::{
    parse_args, parse_points_csv, points_to_csv, pointset_to_csv, CliCommand,
};
use mpc_clustering::core::{diversity, kcenter, ksupplier, Params};
use mpc_clustering::metric::{datasets, EuclideanSpace, PointId, PointSet};

const HELP: &str = "\
mpc-clustering — (2+eps) k-center / k-diversity and (3+eps) k-supplier in the MPC model

USAGE:
  mpc-clustering <command> [--flag value]...

COMMANDS:
  gen        generate a synthetic CSV dataset
             --n <int> [--dim 2] [--clusters 1] [--sigma 0.02] [--seed 0] [--out FILE]
  kcenter    (2+eps)-approximate k-center
             --input FILE --k <int> [--m 8] [--epsilon 0.1] [--seed 0] [--out FILE]
  diversity  (2+eps)-approximate k-diversity maximization
             (same flags as kcenter)
  ksupplier  (3+eps)-approximate k-supplier; rows from --suppliers-from on are suppliers
             --input FILE --k <int> --suppliers-from <row> [--m 8] [--epsilon 0.1] [--seed 0]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "help" {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    // Hidden entry point: the KCENTER_TRANSPORT=process coordinator spawns
    // this binary as the per-machine worker; it serves the pipe protocol on
    // stdin/stdout until shutdown (see mpc_sim::process). Not in --help —
    // it is an implementation detail of the transport, not a CLI feature.
    if args[0] == "transport-worker" {
        return mpc_clustering::sim::transport_worker_main();
    }
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn load_points(cmd: &CliCommand) -> Result<PointSet, Box<dyn std::error::Error>> {
    let path: String = cmd.required("input", "path")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Ok(parse_points_csv(&text)?)
}

fn params_from(cmd: &CliCommand) -> Result<Params, Box<dyn std::error::Error>> {
    let m: usize = cmd.optional("m", 8, "integer")?;
    let epsilon: f64 = cmd.optional("epsilon", 0.1, "number")?;
    let seed: u64 = cmd.optional("seed", 0, "integer")?;
    Ok(Params::practical(m.max(1), epsilon, seed))
}

fn emit(
    cmd: &CliCommand,
    points: &PointSet,
    ids: &[PointId],
) -> Result<(), Box<dyn std::error::Error>> {
    let csv = points_to_csv(points, ids);
    match cmd.options.get("out") {
        Some(path) => {
            std::fs::write(path, csv)?;
            println!("wrote {} rows to {path}", ids.len());
        }
        None => print!("{csv}"),
    }
    Ok(())
}

fn run(args: Vec<String>) -> Result<(), Box<dyn std::error::Error>> {
    let cmd = parse_args(args)?;
    match cmd.command.as_str() {
        "gen" => {
            let n: usize = cmd.required("n", "integer")?;
            let dim: usize = cmd.optional("dim", 2, "integer")?;
            let clusters: usize = cmd.optional("clusters", 1, "integer")?;
            let sigma: f64 = cmd.optional("sigma", 0.02, "number")?;
            let seed: u64 = cmd.optional("seed", 0, "integer")?;
            let ps = if clusters <= 1 {
                datasets::uniform_cube(n, dim, seed)
            } else {
                datasets::gaussian_clusters(n, dim, clusters, sigma, seed)
            };
            let csv = pointset_to_csv(&ps);
            match cmd.options.get("out") {
                Some(path) => {
                    std::fs::write(path, csv)?;
                    println!("wrote {n} points to {path}");
                }
                None => print!("{csv}"),
            }
        }
        "kcenter" => {
            let points = load_points(&cmd)?;
            let k: usize = cmd.required("k", "integer")?;
            let params = params_from(&cmd)?;
            let metric = EuclideanSpace::new(points);
            let res = kcenter::mpc_kcenter(&metric, k, &params);
            eprintln!(
                "k-center radius {:.6} | {} rounds | {} words max/machine",
                res.radius, res.telemetry.rounds, res.telemetry.max_machine_words
            );
            emit(&cmd, metric.points(), &res.centers)?;
        }
        "diversity" => {
            let points = load_points(&cmd)?;
            let k: usize = cmd.required("k", "integer")?;
            let params = params_from(&cmd)?;
            let metric = EuclideanSpace::new(points);
            let res = diversity::mpc_diversity(&metric, k, &params);
            eprintln!(
                "k-diversity {:.6} | {} rounds | {} words max/machine",
                res.diversity, res.telemetry.rounds, res.telemetry.max_machine_words
            );
            emit(&cmd, metric.points(), &res.subset)?;
        }
        "ksupplier" => {
            let points = load_points(&cmd)?;
            let k: usize = cmd.required("k", "integer")?;
            let split: usize = cmd.required("suppliers-from", "row index")?;
            if split == 0 || split >= points.len() {
                return Err(format!(
                    "--suppliers-from must split the {} rows into non-empty halves",
                    points.len()
                )
                .into());
            }
            let params = params_from(&cmd)?;
            let customers: Vec<u32> = (0..split as u32).collect();
            let suppliers: Vec<u32> = (split as u32..points.len() as u32).collect();
            let metric = EuclideanSpace::new(points);
            let res = ksupplier::mpc_ksupplier(&metric, &customers, &suppliers, k, &params);
            eprintln!(
                "k-supplier radius {:.6} | {} rounds | {} words max/machine",
                res.radius, res.telemetry.rounds, res.telemetry.max_machine_words
            );
            emit(&cmd, metric.points(), &res.suppliers)?;
        }
        other => return Err(format!("unknown command {other:?}; try --help").into()),
    }
    Ok(())
}
