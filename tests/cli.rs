//! End-to-end tests of the `mpc-clustering` CLI binary: generate a
//! dataset, run each subcommand, and check outputs and exit codes.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpc-clustering"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("mpc-clustering-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn gen_then_kcenter_round_trip() {
    let pts = tmp("kc-points.csv");
    let out = bin()
        .args([
            "gen",
            "--n",
            "120",
            "--clusters",
            "4",
            "--seed",
            "3",
            "--out",
        ])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&pts).unwrap();
    assert_eq!(text.lines().count(), 120);

    let out = bin()
        .args(["kcenter", "--k", "4", "--m", "4", "--input"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("k-center radius"),
        "missing summary: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 5, "header + 4 centers: {stdout}");
    assert!(stdout.starts_with("id,x0,x1"));
}

#[test]
fn diversity_and_ksupplier_run() {
    let pts = tmp("div-points.csv");
    bin()
        .args(["gen", "--n", "80", "--seed", "5", "--out"])
        .arg(&pts)
        .status()
        .unwrap();

    let out = bin()
        .args(["diversity", "--k", "5", "--m", "2", "--input"])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("k-diversity"));

    let out = bin()
        .args([
            "ksupplier",
            "--k",
            "3",
            "--m",
            "2",
            "--suppliers-from",
            "60",
            "--input",
        ])
        .arg(&pts)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Every returned supplier id must come from the supplier range.
    for line in stdout.lines().skip(1) {
        let id: u32 = line.split(',').next().unwrap().parse().unwrap();
        assert!((60..80).contains(&id), "id {id} is not a supplier");
    }
}

#[test]
fn bad_invocations_fail_cleanly() {
    let out = bin().args(["kcenter", "--k", "4"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));

    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin()
        .args(["kcenter", "--input", "/nonexistent.csv", "--k", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_prints_usage() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("kcenter"));
    assert!(stdout.contains("ksupplier"));
}

#[test]
fn deterministic_across_invocations() {
    let pts = tmp("det-points.csv");
    bin()
        .args(["gen", "--n", "100", "--clusters", "3", "--out"])
        .arg(&pts)
        .status()
        .unwrap();
    let run = || {
        bin()
            .args(["kcenter", "--k", "3", "--seed", "9", "--input"])
            .arg(&pts)
            .output()
            .unwrap()
            .stdout
    };
    assert_eq!(run(), run());
}
