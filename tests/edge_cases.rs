//! Edge-case integration tests: degenerate cluster shapes, discrete
//! metrics with massive tie-breaking pressure, budget accounting, and
//! extreme parameter values.

use mpc_clustering::core::{diversity, kcenter, ksupplier, verify, Params};
use mpc_clustering::metric::{datasets, EuclideanSpace, HammingSpace, PointSet};

/// More machines than points: most machines hold nothing; everything must
/// still work (empty coresets, empty samples, empty light lists).
#[test]
fn more_machines_than_points() {
    let metric = EuclideanSpace::new(datasets::uniform_cube(6, 2, 1));
    let params = Params::practical(16, 0.1, 1);
    let kc = kcenter::mpc_kcenter(&metric, 2, &params);
    assert_eq!(verify::check_kcenter(&metric, 2, &kc), Ok(()));
    let dv = diversity::mpc_diversity(&metric, 3, &params);
    assert_eq!(verify::check_diversity(&metric, 3, &dv), Ok(()));
}

/// Discrete Hamming distances generate heavy ties in GMM selection, the
/// trim weights, and the threshold ladder; outputs must stay valid.
#[test]
fn hamming_ties_everywhere() {
    // 64 points over 8 bits: only 9 distinct distances exist.
    let bits = datasets::random_bitsets(64, 8, 0.5, 3);
    let metric = HammingSpace::from_set_bits(64, 8, &bits);
    let params = Params::practical(4, 0.5, 3);
    let kc = kcenter::mpc_kcenter(&metric, 4, &params);
    assert_eq!(verify::check_kcenter(&metric, 4, &kc), Ok(()));
    let dv = diversity::mpc_diversity(&metric, 4, &params);
    assert_eq!(verify::check_diversity(&metric, 4, &dv), Ok(()));
}

/// An unreasonably tight communication budget must surface as recorded
/// violations, never as a crash or a wrong answer.
#[test]
fn tiny_budget_records_violations() {
    let metric = EuclideanSpace::new(datasets::uniform_cube(300, 2, 5));
    let mut params = Params::practical(4, 0.1, 5);
    params.budget_words = Some(10);
    let kc = kcenter::mpc_kcenter(&metric, 5, &params);
    assert_eq!(verify::check_kcenter(&metric, 5, &kc), Ok(()));
    assert!(
        kc.telemetry.violations > 0,
        "a 10-word budget cannot possibly hold"
    );
}

/// A huge epsilon collapses the ladder to a couple of rungs; the
/// guarantee degrades gracefully (factor 2(1+2) = 6) but validity holds.
#[test]
fn huge_epsilon_short_ladder() {
    let metric = EuclideanSpace::new(datasets::gaussian_clusters(200, 2, 5, 0.02, 7));
    let params = Params::practical(4, 2.0, 7);
    let kc = kcenter::mpc_kcenter(&metric, 5, &params);
    assert_eq!(verify::check_kcenter(&metric, 5, &kc), Ok(()));
    let seq = kcenter::sequential_gmm_kcenter(&metric, 5);
    assert!(kc.radius <= 2.0 * (1.0 + 2.0) * seq.radius + 1e-9);
}

/// Exactly k suppliers: the choice is forced, and the radius equals the
/// best possible for that supplier set.
#[test]
fn ksupplier_with_exactly_k_suppliers() {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for i in 0..30 {
        rows.push(vec![i as f64 * 0.1, 0.0]); // customers on a segment
    }
    rows.push(vec![0.0, 1.0]); // 3 suppliers
    rows.push(vec![1.5, 1.0]);
    rows.push(vec![2.9, 1.0]);
    let metric = EuclideanSpace::new(PointSet::from_rows(&rows));
    let customers: Vec<u32> = (0..30).collect();
    let suppliers: Vec<u32> = vec![30, 31, 32];
    let params = Params::practical(2, 0.1, 9);
    let res = ksupplier::mpc_ksupplier(&metric, &customers, &suppliers, 3, &params);
    assert_eq!(
        verify::check_ksupplier(&metric, &customers, &suppliers, 3, &res),
        Ok(())
    );
    // With all 3 suppliers available the optimal radius is the worst
    // customer-to-nearest-supplier distance.
    let opt: f64 = customers
        .iter()
        .map(|&c| {
            suppliers
                .iter()
                .map(|&s| metric_dist(&metric, c, s))
                .fold(f64::INFINITY, f64::min)
        })
        .fold(0.0, f64::max);
    assert!(res.radius <= 3.0 * (1.0 + 0.1) * opt + 1e-9);
}

fn metric_dist(metric: &EuclideanSpace, a: u32, b: u32) -> f64 {
    use mpc_clustering::metric::{MetricSpace, PointId};
    metric.dist(PointId(a), PointId(b))
}

/// Collinear inputs (a pathological geometry for ball-covering
/// arguments) across all three algorithms.
#[test]
fn collinear_points_are_fine() {
    let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, 0.0]).collect();
    let metric = EuclideanSpace::new(PointSet::from_rows(&rows));
    let params = Params::practical(4, 0.1, 11);
    let kc = kcenter::mpc_kcenter(&metric, 4, &params);
    assert_eq!(verify::check_kcenter(&metric, 4, &kc), Ok(()));
    // Optimal radius for 4 centers on a 0..99 segment is 99/8 = 12.375.
    assert!(kc.radius <= 2.0 * 1.1 * 12.375 + 1e-9);
    let dv = diversity::mpc_diversity(&metric, 4, &params);
    assert_eq!(verify::check_diversity(&metric, 4, &dv), Ok(()));
    // Optimal 4-diversity on the segment is 33 (0, 33, 66, 99).
    assert!(dv.diversity >= 33.0 / (2.0 * 1.1) - 1e-9);
}

/// One single machine (m = 1): the "distributed" algorithm degenerates to
/// a sequential one but must still satisfy its guarantee.
#[test]
fn single_machine_degeneration() {
    let metric = EuclideanSpace::new(datasets::uniform_cube(150, 2, 13));
    let params = Params::practical(1, 0.1, 13);
    let kc = kcenter::mpc_kcenter(&metric, 5, &params);
    assert_eq!(verify::check_kcenter(&metric, 5, &kc), Ok(()));
    let dv = diversity::mpc_diversity(&metric, 5, &params);
    assert_eq!(verify::check_diversity(&metric, 5, &dv), Ok(()));
}
