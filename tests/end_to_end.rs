//! Cross-crate integration tests: the full MPC pipelines over every
//! metric-space implementation, checked against the guarantees the paper
//! proves.

use mpc_clustering::baselines::exact::{exact_diversity, exact_kcenter};
use mpc_clustering::core::{diversity, kcenter, ksupplier, Params};
use mpc_clustering::metric::{
    datasets, dist_point_to_set, min_pairwise_distance, validate::check_metric_axioms,
    ChebyshevSpace, EuclideanSpace, GraphMetricSpace, HammingSpace, ManhattanSpace, MatrixSpace,
    MetricSpace, PointId,
};

/// The headline guarantee on small instances where the optimum is
/// computable: k-center within `2(1+ε)`, diversity within `2(1+ε)`.
#[test]
fn guarantees_hold_against_exact_optimum() {
    let eps = 0.1;
    for seed in [1u64, 2, 3, 4, 5] {
        let metric = EuclideanSpace::new(datasets::uniform_cube(30, 2, seed));
        let k = 4;
        let params = Params::practical(3, eps, seed);

        let (opt_r, _) = exact_kcenter(&metric, k);
        let kc = kcenter::mpc_kcenter(&metric, k, &params);
        assert!(
            kc.radius <= 2.0 * (1.0 + eps) * opt_r + 1e-9,
            "seed {seed}: k-center {} vs opt {opt_r}",
            kc.radius
        );

        let (opt_d, _) = exact_diversity(&metric, k);
        let dv = diversity::mpc_diversity(&metric, k, &params);
        assert!(
            dv.diversity >= opt_d / (2.0 * (1.0 + eps)) - 1e-9,
            "seed {seed}: diversity {} vs opt {opt_d}",
            dv.diversity
        );
    }
}

/// The algorithms are metric-agnostic: run every pipeline on all six
/// metric implementations and check feasibility invariants.
#[test]
fn all_metric_spaces_work() {
    let k = 4;
    let params = Params::practical(3, 0.2, 9);

    let euclid = EuclideanSpace::new(datasets::uniform_cube(60, 3, 1));
    let manhattan = ManhattanSpace::new(datasets::uniform_cube(60, 3, 2));
    let chebyshev = ChebyshevSpace::new(datasets::uniform_cube(60, 3, 3));
    let hamming = HammingSpace::from_set_bits(60, 64, &datasets::random_bitsets(60, 64, 0.3, 4));
    let graph =
        GraphMetricSpace::from_edges(60, &datasets::random_road_network(60, 40, 5)).unwrap();
    let matrix = MatrixSpace::from_fn(60, |i, j| ((i as f64) - (j as f64)).abs().sqrt()).unwrap();

    fn check<M: MetricSpace>(metric: &M, k: usize, params: &Params, name: &str) {
        assert_eq!(
            check_metric_axioms(metric, 400, 1e-9, 7),
            None,
            "{name} violates metric axioms"
        );
        let kc = kcenter::mpc_kcenter(metric, k, params);
        assert!(
            kc.centers.len() <= k && !kc.centers.is_empty(),
            "{name}: no centers"
        );
        // Radius must be realized.
        let true_r = (0..metric.n() as u32)
            .map(|v| dist_point_to_set(metric, PointId(v), &kc.centers))
            .fold(0.0f64, f64::max);
        assert!((kc.radius - true_r).abs() < 1e-9, "{name}: radius mismatch");

        let dv = diversity::mpc_diversity(metric, k, params);
        assert_eq!(dv.subset.len(), k, "{name}: diversity subset size");
        let true_d = min_pairwise_distance(metric, &dv.subset);
        assert!(
            (dv.diversity - true_d).abs() < 1e-9,
            "{name}: diversity mismatch"
        );
    }

    check(&euclid, k, &params, "euclidean");
    check(&manhattan, k, &params, "manhattan");
    check(&chebyshev, k, &params, "chebyshev");
    check(&hamming, k, &params, "hamming");
    check(&graph, k, &params, "graph-metric");
    check(&matrix, k, &params, "matrix");
}

/// k-supplier end to end on a bipartite instance, with the supplier-only
/// constraint enforced.
#[test]
fn ksupplier_respects_supplier_constraint() {
    let metric = EuclideanSpace::new(datasets::uniform_cube(100, 2, 13));
    let customers: Vec<u32> = (0..70).collect();
    let suppliers: Vec<u32> = (70..100).collect();
    let params = Params::practical(4, 0.2, 13);
    let res = ksupplier::mpc_ksupplier(&metric, &customers, &suppliers, 5, &params);
    assert!(res.suppliers.len() <= 5 && !res.suppliers.is_empty());
    for s in &res.suppliers {
        assert!(suppliers.contains(&s.0), "center {s} is not a supplier");
    }
    // Every customer covered within the reported radius.
    for &c in &customers {
        assert!(dist_point_to_set(&metric, PointId(c), &res.suppliers) <= res.radius + 1e-9);
    }
}

/// The ladder refinement must never do worse than its own coarse stage —
/// the paper's algorithms strictly extend the prior two-round methods.
#[test]
fn refinement_dominates_coarse_stage() {
    for seed in [3u64, 17, 29] {
        let metric = EuclideanSpace::new(datasets::gaussian_clusters(400, 2, 10, 0.02, seed));
        let params = Params::practical(5, 0.1, seed);
        let kc = kcenter::mpc_kcenter(&metric, 6, &params);
        assert!(kc.radius <= kc.coarse_r + 1e-12, "seed {seed}");
        let dv = diversity::mpc_diversity(&metric, 6, &params);
        assert!(dv.diversity >= dv.coarse_r - 1e-12, "seed {seed}");
    }
}

/// Rounds stay constant as n grows (Theorem 13/17 shape check): a 16×
/// larger input may not use more than ~2× the rounds.
#[test]
fn rounds_do_not_grow_with_n() {
    let params = Params::practical(8, 0.1, 5);
    let small = {
        let metric = EuclideanSpace::new(datasets::uniform_cube(500, 2, 5));
        kcenter::mpc_kcenter(&metric, 8, &params).telemetry.rounds
    };
    let large = {
        let metric = EuclideanSpace::new(datasets::uniform_cube(8000, 2, 5));
        kcenter::mpc_kcenter(&metric, 8, &params).telemetry.rounds
    };
    assert!(
        large <= small * 2,
        "rounds grew from {small} to {large} — not constant-round behaviour"
    );
}

/// Identical parameters must give bit-identical executions regardless of
/// rayon scheduling (the determinism the RNG design promises).
#[test]
fn full_pipeline_is_deterministic() {
    let metric = EuclideanSpace::new(datasets::powerlaw_clusters(600, 2, 10, 1.5, 0.02, 21));
    let params = Params::practical(6, 0.15, 21);
    let a = kcenter::mpc_kcenter(&metric, 7, &params);
    let b = kcenter::mpc_kcenter(&metric, 7, &params);
    assert_eq!(a.centers, b.centers);
    assert_eq!(a.telemetry.rounds, b.telemetry.rounds);
    assert_eq!(a.telemetry.total_words, b.telemetry.total_words);
}
