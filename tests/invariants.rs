//! Property-based tests (proptest) on the paper's core invariants, driven
//! by randomly generated instances.

use mpc_clustering::baselines::exact::{exact_diversity, exact_kcenter};
use mpc_clustering::core::{diversity, gmm::gmm, kbmis::k_bounded_mis, kcenter, Params};
use mpc_clustering::graph::verify::{is_independent, is_k_bounded_mis};
use mpc_clustering::graph::ThresholdGraph;
use mpc_clustering::metric::{
    dist_point_to_set, min_pairwise_distance, EuclideanSpace, PointId, PointSet,
};
use mpc_clustering::sim::{Cluster, Partition};
use proptest::prelude::*;

/// Random small point sets in the unit square (possibly with duplicates).
fn arb_points(max_n: usize) -> impl Strategy<Value = PointSet> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..max_n).prop_map(|pts| {
        PointSet::from_rows(&pts.iter().map(|&(x, y)| vec![x, y]).collect::<Vec<_>>())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GMM's anti-cover properties (§2.2) hold on arbitrary inputs.
    #[test]
    fn gmm_anti_cover((points, k) in arb_points(60).prop_flat_map(|p| {
        let n = p.len();
        (Just(p), 2..=n.min(8))
    })) {
        let metric = EuclideanSpace::new(points);
        let subset: Vec<u32> = (0..metric.points().len() as u32).collect();
        let out = gmm(&metric, &subset, k);
        let ids: Vec<PointId> = out.selected.iter().map(|&v| PointId(v)).collect();
        let r = out.diversity();
        if r.is_finite() {
            // Every selected point >= r away from the other selections.
            for (i, &p) in ids.iter().enumerate() {
                let others: Vec<PointId> = ids.iter().enumerate()
                    .filter(|&(j, _)| j != i).map(|(_, &q)| q).collect();
                prop_assert!(dist_point_to_set(&metric, p, &others) >= r - 1e-9);
            }
        }
        // Every input point within covering radius of the selection.
        let cov = out.covering_radius();
        for &v in &subset {
            prop_assert!(dist_point_to_set(&metric, PointId(v), &ids) <= cov + 1e-9);
        }
    }

    /// Algorithm 4's output is a valid k-bounded MIS for arbitrary
    /// thresholds, machine counts, and k.
    #[test]
    fn k_bounded_mis_validity(
        (points, k, m, tau, seed) in arb_points(50).prop_flat_map(|p| {
            let n = p.len();
            (Just(p), 1..=n, 1usize..=6, 0.0f64..1.5, 0u64..1000)
        })
    ) {
        let metric = EuclideanSpace::new(points);
        let n = metric.points().len();
        let mut cluster = Cluster::new(m, seed);
        let params = Params::practical(m, 0.1, seed);
        let alive = Partition::round_robin(n, m).all_items().to_vec();
        let res = k_bounded_mis(&mut cluster, &metric, &alive, tau, k, n, &params, false);
        let g = ThresholdGraph::new(&metric, tau);
        let universe: Vec<u32> = (0..n as u32).collect();
        prop_assert!(
            is_k_bounded_mis(&g, &res.set, &universe, k),
            "set {:?} (outcome {:?}) not a {k}-bounded MIS at tau {tau}",
            res.set, res.outcome
        );
    }

    /// End-to-end guarantee against brute force on tiny instances.
    #[test]
    fn approximation_guarantees_small(
        (points, seed) in (arb_points(18), 0u64..200)
    ) {
        let metric = EuclideanSpace::new(points);
        let n = metric.points().len();
        let k = 3.min(n - 1).max(2);
        if n <= k { return Ok(()); }
        let eps = 0.25;
        let params = Params::practical(2, eps, seed);

        let (opt_r, _) = exact_kcenter(&metric, k);
        let kc = kcenter::mpc_kcenter(&metric, k, &params);
        prop_assert!(kc.radius <= 2.0 * (1.0 + eps) * opt_r + 1e-9,
            "k-center {} vs opt {opt_r}", kc.radius);

        let (opt_d, _) = exact_diversity(&metric, k);
        let dv = diversity::mpc_diversity(&metric, k, &params);
        prop_assert!(dv.diversity >= opt_d / (2.0 * (1.0 + eps)) - 1e-9,
            "diversity {} vs opt {opt_d}", dv.diversity);
    }

    /// The diversity value reported always matches the subset returned,
    /// and the subset is made of distinct input points.
    #[test]
    fn reported_values_are_realized(
        (points, seed) in (arb_points(40), 0u64..100)
    ) {
        let metric = EuclideanSpace::new(points);
        let n = metric.points().len();
        let k = 4.min(n);
        if k < 2 { return Ok(()); }
        let params = Params::practical(3, 0.2, seed);
        let dv = diversity::mpc_diversity(&metric, k, &params);
        let mut ids: Vec<u32> = dv.subset.iter().map(|p| p.0).collect();
        prop_assert!((dv.diversity - min_pairwise_distance(&metric, &dv.subset)).abs() < 1e-9);
        ids.sort_unstable();
        let len_before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), len_before, "duplicate points in subset");
        prop_assert!(ids.iter().all(|&v| (v as usize) < n));
    }

    /// trim() always yields an independent subset of its input sample.
    #[test]
    fn trim_independence(
        (points, tau) in (arb_points(40), 0.0f64..1.0)
    ) {
        let metric = EuclideanSpace::new(points);
        let n = metric.points().len();
        let g = ThresholdGraph::new(&metric, tau);
        let sample: Vec<u32> = (0..n as u32).step_by(2).collect();
        let weights: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64).collect();
        for tie in [mpc_clustering::graph::mis::TieBreak::Strict,
                    mpc_clustering::graph::mis::TieBreak::ById] {
            let t = mpc_clustering::graph::mis::trim(&g, &sample, &weights, tie);
            prop_assert!(is_independent(&g, &t));
            prop_assert!(t.iter().all(|v| sample.contains(v)));
        }
    }
}
