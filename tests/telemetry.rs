//! Integration tests of the resource accounting: the measured rounds and
//! communication must match the paper's claimed complexity *shapes*.

use mpc_clustering::core::{diversity, kcenter, Params};
use mpc_clustering::metric::{datasets, EuclideanSpace};

/// Per-machine communication grows ~linearly in m·k (Õ(mk) claim): going
/// from (m, k) to (2m, 2k) must grow max words/machine by far less than
/// the 16× a quadratic dependence would allow.
#[test]
fn communication_scales_like_mk() {
    let n = 3000;
    let metric = EuclideanSpace::new(datasets::gaussian_clusters(n, 2, 8, 0.02, 3));
    let small = kcenter::mpc_kcenter(&metric, 5, &Params::practical(4, 0.1, 3));
    let big = kcenter::mpc_kcenter(&metric, 10, &Params::practical(8, 0.1, 3));
    let ratio = big.telemetry.max_machine_words as f64 / small.telemetry.max_machine_words as f64;
    assert!(
        ratio < 12.0,
        "4x larger m·k grew per-machine words {ratio:.1}x — beyond Õ(mk) shape"
    );
}

/// A generous absolute budget derived from the theory bound: max words
/// per machine per round stays within C·(m·k + n/m)·polylog.
#[test]
fn per_round_traffic_within_model_budget() {
    let n = 2000;
    let m = 8;
    let k = 8;
    let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 7));
    let mut params = Params::practical(m, 0.1, 7);
    let ln_n = (n as f64).ln();
    // Memory budget Õ(n/m + mk): constant 60 absorbs the dim-2 weights and
    // the practical-constant slack.
    let budget = (60.0 * ((n / m) as f64 + (m * k) as f64) * ln_n) as u64;
    params.budget_words = Some(budget);
    let res = kcenter::mpc_kcenter(&metric, k, &params);
    assert_eq!(
        res.telemetry.violations, 0,
        "per-round traffic exceeded the Õ(n/m + mk) budget {budget}"
    );
}

/// Round counts do not depend on the data distribution (constant-round
/// algorithms): the most skewed workload may only cost a small factor
/// more rounds than the friendliest.
#[test]
fn rounds_stable_across_workloads() {
    let n = 1500;
    let k = 6;
    let params = Params::practical(6, 0.1, 11);
    let mut counts = Vec::new();
    for metric in [
        EuclideanSpace::new(datasets::uniform_cube(n, 2, 11)),
        EuclideanSpace::new(datasets::gaussian_clusters(n, 2, 8, 0.01, 11)),
        EuclideanSpace::new(datasets::adversarial_outlier(n, 8, 100.0, 11)),
    ] {
        counts.push(
            diversity::mpc_diversity(&metric, k, &params)
                .telemetry
                .rounds,
        );
    }
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(
        max <= 4 * min.max(1),
        "rounds vary wildly across workloads: {counts:?}"
    );
}

/// Peak per-machine memory respects the paper's Õ(n/m + mk) bound with a
/// generous polylog constant.
#[test]
fn memory_within_model_bound() {
    let n = 2000;
    let m = 8;
    let k = 8;
    let metric = EuclideanSpace::new(datasets::uniform_cube(n, 2, 19));
    let params = Params::practical(m, 0.1, 19);
    let res = kcenter::mpc_kcenter(&metric, k, &params);
    let ln_n = (n as f64).ln();
    let bound = (60.0 * ((n / m) as f64 + (m * k) as f64) * ln_n) as u64;
    assert!(
        res.telemetry.max_machine_memory > 0,
        "memory accounting must observe the execution"
    );
    assert!(
        res.telemetry.max_machine_memory <= bound,
        "peak memory {} exceeds Õ(n/m + mk) bound {bound}",
        res.telemetry.max_machine_memory
    );
}

/// Sequential baselines consume zero simulator resources, MPC algorithms
/// always consume some — the ledger actually observes the execution.
#[test]
fn ledger_observes_execution() {
    let metric = EuclideanSpace::new(datasets::uniform_cube(300, 2, 1));
    let params = Params::practical(4, 0.1, 1);
    let res = diversity::mpc_diversity(&metric, 5, &params);
    assert!(res.telemetry.rounds > 0);
    assert!(res.telemetry.total_words > 0);
    assert!(res.telemetry.max_machine_words <= res.telemetry.total_words);
    assert!(res.telemetry.max_machine_words_per_round <= res.telemetry.max_machine_words);
    let seq = diversity::sequential_gmm_diversity(&metric, 5);
    assert_eq!(seq.telemetry.rounds, 0);
    assert_eq!(seq.telemetry.total_words, 0);
}
