//! End-to-end test of the multi-process transport: the coordinator spawns
//! real worker processes (this crate's own binary via
//! `CARGO_BIN_EXE_mpc-clustering`), ships every collective's frames over
//! pipes, and the full Algorithm 5 pipeline must land on exactly the same
//! answer as the in-memory reference — with zero wire-conformance
//! violations.
//!
//! All scenarios live in one `#[test]` because transport selection is
//! process-global environment state (`KCENTER_TRANSPORT`,
//! `KCENTER_WORKER_EXE`) and Rust runs tests in threads.

use mpc_clustering::core::{diversity, kcenter, Params};
use mpc_clustering::metric::{datasets, EuclideanSpace};
use mpc_clustering::sim::{Cluster, TransportKind};

fn digest(res: &kcenter::KCenterResult) -> (Vec<u32>, u64, u64, u64, u64) {
    (
        res.centers.iter().map(|c| c.0).collect(),
        res.radius.to_bits(),
        res.telemetry.rounds,
        res.telemetry.max_machine_words,
        res.telemetry.total_words,
    )
}

#[test]
fn process_backend_matches_sim_end_to_end() {
    // SAFETY-by-construction: this is the only test in this binary that
    // touches these variables, and it sets them before any Cluster exists.
    std::env::set_var("KCENTER_WORKER_EXE", env!("CARGO_BIN_EXE_mpc-clustering"));
    std::env::remove_var("KCENTER_TRANSPORT");

    // Collective-level smoke: real worker processes carry the frames and
    // their tallies must agree with the ledger exactly.
    {
        let mut c = Cluster::with_transport(4, 11, TransportKind::Process);
        let contribs: Vec<Vec<u32>> = (0..4).map(|i| vec![i as u32, 10 + i as u32]).collect();
        let union = c.all_broadcast("e2e/all_broadcast", contribs.clone(), 2);
        assert_eq!(union, vec![0, 10, 1, 11, 2, 12, 3, 13]);
        let gathered = c.gather("e2e/gather", contribs, 1);
        assert_eq!(gathered.len(), 8);
        let stats = c.wire_stats().expect("process backend keeps stats");
        assert_eq!(stats.conformance_violations, 0);
        assert_eq!(stats.rounds.len(), c.ledger().records().len());
        for (wr, rec) in stats.rounds.iter().zip(c.ledger().records()) {
            for (bio, mio) in wr.per_machine.iter().zip(&rec.per_machine) {
                assert_eq!(
                    bio.sent,
                    mio.sent * 8,
                    "bytes == 8 x words in {}",
                    rec.label
                );
                assert_eq!(bio.received, mio.received * 8);
            }
        }
    }

    // Full Algorithm 5 pipeline (coarse estimate + τ-ladder + finalize)
    // on both backends; the process run must be answer- and
    // ledger-identical to sim.
    let metric = EuclideanSpace::new(datasets::gaussian_clusters(600, 3, 6, 0.05, 42));
    let params = Params::practical(4, 0.1, 42);

    std::env::set_var("KCENTER_TRANSPORT", "sim");
    let sim_kc = kcenter::mpc_kcenter(&metric, 6, &params);
    let sim_dv = diversity::mpc_diversity(&metric, 6, &params);
    assert!(sim_kc.telemetry.wire.is_none(), "sim moves no bytes");

    std::env::set_var("KCENTER_TRANSPORT", "process");
    let proc_kc = kcenter::mpc_kcenter(&metric, 6, &params);
    let proc_dv = diversity::mpc_diversity(&metric, 6, &params);
    std::env::remove_var("KCENTER_TRANSPORT");

    assert_eq!(digest(&sim_kc), digest(&proc_kc), "Alg 5 digest parity");
    assert_eq!(sim_dv.subset, proc_dv.subset, "diversity subset parity");
    assert_eq!(sim_dv.diversity.to_bits(), proc_dv.diversity.to_bits());

    let wire = proc_kc
        .telemetry
        .wire
        .as_ref()
        .expect("process backend stamps wire telemetry");
    assert_eq!(wire.backend, "process");
    assert_eq!(
        wire.conformance_violations, 0,
        "zero conformance violations"
    );
    assert_eq!(
        wire.rounds, proc_kc.telemetry.rounds,
        "wire rounds == ledger rounds"
    );
    assert!(wire.payload_bytes > 0, "frames physically moved");
    assert!(wire.setup_bytes > 0, "shards shipped at setup");
}
